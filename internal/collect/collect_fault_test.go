package collect

import (
	"fmt"
	"testing"

	"caf2go/internal/fabric"
	"caf2go/internal/rt"
	"caf2go/internal/sim"
	"caf2go/internal/team"
)

// runSPMDFaulty mirrors runSPMD but builds the kernel over a faulty fabric:
// tree edges drop, duplicate, and reorder, and the reliability layer must
// retransmit them transparently.
func runSPMDFaulty(t testing.TB, n int, seed int64, plan *fabric.FaultPlan,
	body func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team)) fabric.Stats {
	t.Helper()
	cfg := fabric.DefaultConfig()
	cfg.Faults = plan
	eng := sim.NewEngine(seed)
	k := rt.NewKernel(eng, n, cfg)
	c := New(k)
	w := team.World(n)
	for i := 0; i < n; i++ {
		img := k.Image(i)
		img.Go("main", func(p *sim.Proc) { body(p, img, c, w) })
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return k.Fabric().Stats()
}

// TestAllreduceCorrectUnderFaults: every tree edge of the up/down sweep is
// subject to drop/dup/jitter, yet each image must still see the exact sum
// — a lost child contribution or a double-applied one would skew it.
func TestAllreduceCorrectUnderFaults(t *testing.T) {
	for _, n := range []int{2, 5, 8, 16} {
		for seed := int64(1); seed <= 3; seed++ {
			n, seed := n, seed
			t.Run(fmt.Sprintf("n=%d seed=%d", n, seed), func(t *testing.T) {
				plan := &fabric.FaultPlan{Seed: seed, Drop: 0.3, Dup: 0.3, Jitter: 20 * sim.Microsecond}
				got := make([][]int64, n)
				fs := runSPMDFaulty(t, n, seed, plan, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
					r := int64(img.Rank())
					got[img.Rank()] = c.Allreduce(p, img, w, Sum, []int64{r + 1, r * r})
				})
				wantA := int64(n) * int64(n+1) / 2
				var wantB int64
				for i := 0; i < n; i++ {
					wantB += int64(i) * int64(i)
				}
				for i, g := range got {
					if len(g) != 2 || g[0] != wantA || g[1] != wantB {
						t.Errorf("image %d allreduce = %v, want [%d %d]", i, g, wantA, wantB)
					}
				}
				if n > 2 && fs.Retransmits == 0 && fs.DupsDropped == 0 {
					t.Error("fault plan injected nothing — test exercised no recovery")
				}
			})
		}
	}
}

// TestBarrierAndBroadcastUnderFaults: control edges (zero-payload barrier
// tokens, broadcast fan-out) retry like any other message; the barrier must
// still not release anyone before the last arrival.
func TestBarrierAndBroadcastUnderFaults(t *testing.T) {
	const n = 7
	plan := &fabric.FaultPlan{Seed: 3, Drop: 0.25, Dup: 0.25, Jitter: 10 * sim.Microsecond}
	exits := make([]sim.Time, n)
	var lastEnter sim.Time
	vals := make([]any, n)
	runSPMDFaulty(t, n, 11, plan, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
		p.Sleep(sim.Time(img.Rank()) * 15 * sim.Microsecond)
		if p.Now() > lastEnter {
			lastEnter = p.Now()
		}
		c.Barrier(p, img, w)
		exits[img.Rank()] = p.Now()
		vals[img.Rank()] = c.Broadcast(p, img, w, 2, map[bool]string{true: "root-payload"}[img.Rank() == 2], 32)
	})
	for i, e := range exits {
		if e < lastEnter {
			t.Errorf("image %d released from barrier at %v before last entry %v", i, e, lastEnter)
		}
	}
	for i, v := range vals {
		if v != "root-payload" {
			t.Errorf("image %d broadcast got %v", i, v)
		}
	}
}
