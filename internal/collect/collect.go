// Package collect implements CAF 2.0 team collectives over binomial trees:
// barrier, broadcast, reduce, allreduce, gather, scatter, alltoall, scan,
// and sort (the full set envisioned in paper §II-C3), each in a
// synchronous and an asynchronous (handle-returning) variant.
//
// Asynchronous collectives progress entirely through active-message state
// machines — no simulated process blocks — and expose the two completion
// points the paper distinguishes (Fig. 4): local data completion (the
// image's buffer is usable) and local operation completion (all pair-wise
// communication involving the image is done). Global completion is the
// finish plane's business: tree messages carry the caller's tracking
// context so a finish block cannot close before enclosed collectives are
// globally complete.
//
// SPMD discipline: every member of a team must invoke the same collectives
// on that team in the same order; instances are matched by a per-(team,
// kind) sequence number.
package collect

import (
	"fmt"

	"caf2go/internal/fabric"
	"caf2go/internal/failure"
	"caf2go/internal/rt"
	"caf2go/internal/sim"
	"caf2go/internal/team"
)

// Tag is the fabric tag collect registers. Exported so layers above can
// avoid collisions.
const Tag uint16 = 100

// Op is a reduction operator over int64 vectors.
type Op uint8

// Reduction operators.
const (
	Sum Op = iota
	Prod
	Min
	Max
	BAnd
	BOr
	BXor
)

func (op Op) String() string {
	switch op {
	case Sum:
		return "sum"
	case Prod:
		return "prod"
	case Min:
		return "min"
	case Max:
		return "max"
	case BAnd:
		return "band"
	case BOr:
		return "bor"
	case BXor:
		return "bxor"
	}
	return "?"
}

// combine folds src into dst element-wise.
func (op Op) combine(dst, src []int64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("collect: vector length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		switch op {
		case Sum:
			dst[i] += v
		case Prod:
			dst[i] *= v
		case Min:
			if v < dst[i] {
				dst[i] = v
			}
		case Max:
			if v > dst[i] {
				dst[i] = v
			}
		case BAnd:
			dst[i] &= v
		case BOr:
			dst[i] |= v
		case BXor:
			dst[i] ^= v
		}
	}
}

type kind uint8

const (
	kBarrier kind = iota
	kBcast
	kReduce
	kAllreduce
	kGather
	kScatter
	kAlltoall
	kScan
	kSort
)

func (kd kind) String() string {
	return [...]string{"barrier", "bcast", "reduce", "allreduce", "gather",
		"scatter", "alltoall", "scan", "sort"}[kd]
}

type instKey struct {
	teamID int64
	kd     kind
	root   int // team rank of the root (0 where rootless)
	seq    uint64
}

type phase uint8

const (
	phaseUp phase = iota
	phaseDown
	phaseDirect // alltoall point-to-point
)

// colMsg is the payload of every collect active message. The *team.Team
// pointer rides along because the simulation shares one address space.
type colMsg struct {
	key     instKey
	t       *team.Team
	op      Op
	ph      phase
	fromRel int
	vec     []int64
	data    any
	bytes   int // modeled wire size
	elem    int // per-element payload size, for forwarding cost accounting
}

// Handle tracks one image's view of one asynchronous collective.
type Handle struct {
	img  *rt.ImageKernel
	kd   kind
	inst *inst

	localData bool
	localOp   bool
	ldCbs     []func()
	loCbs     []func()
	waiters   []*sim.Proc

	result any
}

// LocalDataDone reports local data completion: the image's input buffer
// may be overwritten and its output (if any) read.
func (h *Handle) LocalDataDone() bool { return h.localData }

// LocalOpDone reports local operation completion: all pair-wise
// communication involving this image is finished.
func (h *Handle) LocalOpDone() bool { return h.localOp }

// Result returns the operation's local result: the received value for
// broadcast, the reduced vector for allreduce (and reduce at the root),
// the gathered []any at a gather root, the received element for scatter,
// the []any for alltoall, the prefix vector for scan, and the re-sorted
// keys for sort. Valid once LocalDataDone.
func (h *Handle) Result() any { return h.result }

// OnLocalData registers fn to run at local data completion (immediately
// if already complete).
func (h *Handle) OnLocalData(fn func()) {
	if h.localData {
		fn()
		return
	}
	h.ldCbs = append(h.ldCbs, fn)
}

// OnLocalOp registers fn to run at local operation completion.
func (h *Handle) OnLocalOp(fn func()) {
	if h.localOp {
		fn()
		return
	}
	h.loCbs = append(h.loCbs, fn)
}

// WaitLocalData parks p until local data completion. With a failure
// detector attached to the kernel, a declared death while the tree is
// incomplete aborts the wait (fail-stop) instead of hanging on a
// message the dead image will never forward.
func (h *Handle) WaitLocalData(p *sim.Proc) {
	if !h.WaitLocalDataErr(p) {
		panic(failure.Abort{Err: h.img.Kernel().Detector().ErrFor("collective")})
	}
}

// WaitLocalDataErr is WaitLocalData for callers that recover rather
// than fail-stop: it reports false instead of panicking when a failure
// is declared before the tree completes. The finish plane's resilient
// termination detection uses it to fall back to the survivor poll
// protocol. The waiter mechanics are identical to WaitLocalData's, so
// an idle detector perturbs nothing.
func (h *Handle) WaitLocalDataErr(p *sim.Proc) bool {
	det := h.img.Kernel().Detector()
	h.waiters = append(h.waiters, p)
	p.WaitUntil("collective local data", func() bool { return h.localData || det.AnyDead() })
	return h.localData
}

// WaitLocalOp parks p until local operation completion, aborting like
// WaitLocalData when a failure is declared first.
func (h *Handle) WaitLocalOp(p *sim.Proc) {
	det := h.img.Kernel().Detector()
	h.waiters = append(h.waiters, p)
	p.WaitUntil("collective local op", func() bool { return h.localOp || det.AnyDead() })
	if !h.localOp {
		panic(failure.Abort{Err: det.ErrFor("collective")})
	}
}

func (h *Handle) fireLocalData() {
	if h.localData {
		return
	}
	h.localData = true
	cbs := h.ldCbs
	h.ldCbs = nil
	for _, fn := range cbs {
		fn()
	}
	for _, w := range h.waiters {
		w.Unpark()
	}
}

func (h *Handle) fireLocalOp() {
	if h.localOp {
		return
	}
	h.localOp = true
	cbs := h.loCbs
	h.loCbs = nil
	for _, fn := range cbs {
		fn()
	}
	for _, w := range h.waiters {
		w.Unpark()
	}
}

// inst is one image's state for one collective instance.
type inst struct {
	key   instKey
	t     *team.Team
	op    Op
	track any

	started bool
	h       *Handle

	relRank  int
	children []int
	nKids    int

	// up phase
	vec      []int64
	haveVec  bool
	upKids   int // contributions still expected
	kidData  map[int]any
	dataIn   any // down-phase or scatter payload received
	haveData bool

	// per-rank payload funnels (gather/scan/sort/alltoall)
	byRank map[int]any // team-rank -> payload (accumulated at up nodes)
	direct int         // alltoall receipts still expected

	acksPending int  // sends not yet delivered
	injPending  int  // sends not yet injected (buffer still pinned)
	upSent      bool // contribution passed to parent (or root up complete)
	downDone    bool // down phase forwarded (or not needed)
	elemBytes   int
}

// Tree selects the communication-tree shape. Binomial gives the
// O(log p) critical paths the paper's finish analysis assumes; Flat is
// the centralized star used as an ablation baseline (every message goes
// through relative rank 0, O(p) at the root).
type Tree uint8

// Tree shapes.
const (
	Binomial Tree = iota
	Flat
)

func (t Tree) String() string {
	if t == Flat {
		return "flat"
	}
	return "binomial"
}

// node is the per-image collect state.
type node struct {
	img   *rt.ImageKernel
	tree  Tree
	seqs  map[instKey]uint64 // next seq per (team, kind, root); key.seq=0
	insts map[instKey]*inst
}

// Comm provides collectives over an rt.Kernel.
type Comm struct {
	k     *rt.Kernel
	tree  Tree
	nodes []*node
}

// New registers collect handlers on every image of k, using binomial
// trees.
func New(k *rt.Kernel) *Comm { return NewWithTree(k, Binomial) }

// NewWithTree is New with an explicit tree shape.
func NewWithTree(k *rt.Kernel, tree Tree) *Comm {
	c := &Comm{k: k, tree: tree}
	c.nodes = make([]*node, k.NumImages())
	for i := range c.nodes {
		c.nodes[i] = &node{
			img:   k.Image(i),
			tree:  tree,
			seqs:  make(map[instKey]uint64),
			insts: make(map[instKey]*inst),
		}
	}
	k.RegisterHandler(Tag, func(d *rt.Delivery) {
		m := d.Payload.(*colMsg)
		c.nodes[d.Img.Rank()].onMsg(m, d.Track())
	})
	return c
}

// TreeShape reports the configured tree.
func (c *Comm) TreeShape() Tree { return c.tree }

func classFor(k *rt.Kernel, bytes int) fabric.Class {
	if bytes > k.Fabric().MaxMedium() {
		return fabric.RDMA
	}
	return fabric.AMMedium
}

// nextSeq allocates the local sequence number for a new instance.
func (n *node) nextSeq(teamID int64, kd kind, root int) uint64 {
	k := instKey{teamID: teamID, kd: kd, root: root}
	n.seqs[k]++
	return n.seqs[k]
}

// get returns the instance for key, creating a passive one if needed.
func (n *node) get(key instKey, t *team.Team, track any) *inst {
	in, ok := n.insts[key]
	if !ok {
		in = &inst{key: key, t: t, track: track, kidData: make(map[int]any), byRank: make(map[int]any)}
		in.relRank = relOf(t.MustRank(n.img.Rank()), key.root, t.Size())
		in.children = n.childrenOf(in.relRank, t.Size())
		in.nKids = len(in.children)
		in.upKids = in.nKids
		in.direct = t.Size() - 1
		n.insts[key] = in
	}
	return in
}

// childrenOf returns a relative rank's children under the node's tree.
func (n *node) childrenOf(rel, size int) []int {
	if n.tree == Flat {
		if rel != 0 {
			return nil
		}
		out := make([]int, 0, size-1)
		for c := 1; c < size; c++ {
			out = append(out, c)
		}
		return out
	}
	return childrenRel(rel, size)
}

// parentOf returns a relative rank's parent under the node's tree.
func (n *node) parentOf(rel int) int {
	if n.tree == Flat {
		return 0
	}
	return parentRel(rel)
}

// spanOf returns the width of rel's contiguous subtree under the tree.
func (n *node) spanOf(rel, size int) int {
	if n.tree == Flat {
		if rel == 0 {
			return size
		}
		return 1
	}
	return subtreeSpanOf(rel, size)
}

// relOf maps a team rank into the tree's relative rank space (root ↦ 0).
func relOf(teamRank, root, size int) int {
	return (teamRank - root + size) % size
}

// absOf maps a relative rank back to a team rank.
func absOf(rel, root, size int) int {
	return (rel + root) % size
}

// parentRel returns the binomial-tree parent of relative rank r (r > 0).
func parentRel(r int) int { return r & (r - 1) }

// childrenRel returns the binomial-tree children of relative rank r.
func childrenRel(r, size int) []int {
	low := r & -r
	if r == 0 {
		low = 1
		for low < size {
			low <<= 1
		}
		if size == 1 {
			low = 1
		}
	}
	var out []int
	for bit := 1; bit < low; bit <<= 1 {
		c := r | bit
		if c < size {
			out = append(out, c)
		}
	}
	return out
}

// subtreeSize returns the number of relative ranks in r's binomial subtree
// within a team of the given size.
func subtreeSize(r, size int) int {
	n := 1
	for _, c := range childrenRel(r, size) {
		n += subtreeSize(c, size)
	}
	return n
}

// onMsg processes one delivered tree message.
func (n *node) onMsg(m *colMsg, track any) {
	in := n.get(m.key, m.t, track)
	if in.track == nil {
		in.track = track
	}
	if in.elemBytes == 0 {
		in.elemBytes = m.elem
	}
	switch m.ph {
	case phaseUp:
		in.upKids--
		if m.vec != nil {
			in.contrib(m.op, m.vec)
		}
		if m.data != nil {
			for r, v := range m.data.(map[int]any) {
				in.byRank[r] = v
			}
		}
		n.tryAdvanceUp(in)
	case phaseDown:
		in.dataIn = m.data
		if m.vec != nil {
			in.dataIn = append([]int64(nil), m.vec...)
		}
		in.haveData = true
		n.advanceDown(in)
	case phaseDirect:
		in.direct--
		in.byRank[m.fromRel] = m.data
		n.tryFinishDirect(in)
	}
}

// maybeFinish fires local-op completion and garbage-collects the instance
// once all of its conditions hold.
func (n *node) maybeFinish(in *inst) {
	if !in.started || in.h == nil {
		return
	}
	if in.acksPending > 0 {
		return
	}
	switch in.key.kd {
	case kBarrier, kAllreduce, kScan, kSort:
		if !in.downDone {
			return
		}
	case kBcast, kScatter:
		if !in.downDone {
			return
		}
	case kReduce, kGather:
		if !in.upSent {
			return
		}
	case kAlltoall:
		if in.direct > 0 {
			return
		}
	}
	in.h.fireLocalOp()
	delete(n.insts, in.key)
}
