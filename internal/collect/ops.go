package collect

import (
	"fmt"
	"sort"

	"caf2go/internal/rt"
	"caf2go/internal/sim"
	"caf2go/internal/team"
)

const msgHeaderBytes = 16

// sendTree dispatches one tree message, optionally watching injection
// (source-buffer reuse) and delivery (pair-wise completion).
func (n *node) sendTree(in *inst, dstTeamRank int, m *colMsg, needAck, needInject bool) {
	m.key = in.key
	m.t = in.t
	m.op = in.op
	m.elem = in.elemBytes
	dst := in.t.WorldRank(dstTeamRank)
	opts := rt.SendOpts{
		Track: in.track,
		Class: classFor(n.img.Kernel(), m.bytes),
		Bytes: m.bytes,
		// Collective tree messages sit on the critical path of barriers
		// and finish termination rounds: never coalesce them.
		NoCoalesce: true,
	}
	if needAck {
		in.acksPending++
		opts.OnDelivered = func() {
			in.acksPending--
			n.maybeFinish(in)
		}
	}
	if needInject {
		in.injPending++
		opts.OnInjected = func() {
			in.injPending--
			n.checkLocalData(in)
		}
	}
	n.img.Send(dst, Tag, m, opts)
}

// start begins this image's participation in a collective instance.
func (c *Comm) start(img *rt.ImageKernel, t *team.Team, kd kind, root int,
	op Op, vec []int64, data any, elemBytes int, track any) *Handle {

	if root < 0 || root >= t.Size() {
		panic(fmt.Sprintf("collect: root %d out of range for %v", root, t))
	}
	// A collective is a synchronization point: drain this image's
	// coalescing buffers before joining.
	img.FlushCoalesced()
	n := c.nodes[img.Rank()]
	key := instKey{teamID: t.ID(), kd: kd, root: root,
		seq: n.nextSeq(t.ID(), kd, root)}
	in := n.get(key, t, track)
	if in.started {
		panic("collect: duplicate start for instance " + kd.String())
	}
	if track != nil {
		in.track = track
	}
	in.started = true
	in.op = op
	in.elemBytes = elemBytes
	h := &Handle{img: img, kd: kd, inst: in}
	in.h = h

	myTeamRank := t.MustRank(img.Rank())
	switch kd {
	case kBarrier:
		n.tryAdvanceUp(in)
	case kBcast:
		if in.relRank == 0 {
			in.dataIn = data
			in.haveData = true
			h.result = data
			n.forwardDown(in)
		} else if in.haveData {
			h.result = in.dataIn
		}
	case kReduce, kAllreduce:
		in.contrib(op, vec)
		n.tryAdvanceUp(in)
	case kGather:
		in.byRank[myTeamRank] = data
		n.tryAdvanceUp(in)
	case kScatter:
		if in.relRank == 0 {
			vals := data.([]any)
			if len(vals) != t.Size() {
				panic(fmt.Sprintf("collect: scatter got %d values for team of %d", len(vals), t.Size()))
			}
			bundle := make(map[int]any, len(vals))
			for tr, v := range vals {
				bundle[tr] = v
			}
			h.result = vals[myTeamRank]
			n.forwardBundles(in, bundle)
		} else if in.haveData {
			h.result = in.byRank[myTeamRank]
		}
	case kAlltoall:
		vals := data.([]any)
		if len(vals) != t.Size() {
			panic(fmt.Sprintf("collect: alltoall got %d values for team of %d", len(vals), t.Size()))
		}
		in.byRank[myTeamRank] = vals[myTeamRank]
		for tr := 0; tr < t.Size(); tr++ {
			if tr == myTeamRank {
				continue
			}
			n.sendTree(in, tr, &colMsg{
				ph:      phaseDirect,
				fromRel: myTeamRank,
				data:    vals[tr],
				bytes:   elemBytes + msgHeaderBytes,
			}, true, true)
		}
		n.tryFinishDirect(in)
	case kScan, kSort:
		in.byRank[myTeamRank] = append([]int64(nil), vec...)
		n.tryAdvanceUp(in)
	default:
		panic("collect: unknown kind")
	}

	n.checkLocalData(in)
	n.maybeFinish(in)
	return h
}

// contrib folds this image's vector into the partial reduction.
func (in *inst) contrib(op Op, vec []int64) {
	if !in.haveVec {
		in.vec = append([]int64(nil), vec...)
		in.haveVec = true
	} else {
		op.combine(in.vec, vec)
	}
}

// tryAdvanceUp fires when a node may pass its subtree contribution to its
// parent (or, at the tree root, complete the up phase).
func (n *node) tryAdvanceUp(in *inst) {
	if !in.started || in.upKids > 0 || in.upSent {
		return
	}
	in.upSent = true
	if in.relRank == 0 {
		n.rootUpComplete(in)
		return
	}
	parent := absOf(n.parentOf(in.relRank), in.key.root, in.t.Size())
	switch in.key.kd {
	case kBarrier:
		n.sendTree(in, parent, &colMsg{ph: phaseUp, bytes: msgHeaderBytes}, true, false)
	case kReduce, kAllreduce:
		needInject := in.key.kd == kReduce // reduce: local data = contribution on the wire
		n.sendTree(in, parent, &colMsg{
			ph:    phaseUp,
			vec:   in.vec,
			bytes: 8*len(in.vec) + msgHeaderBytes,
		}, true, needInject)
	case kGather, kScan, kSort:
		bytes := msgHeaderBytes
		for range in.byRank {
			bytes += in.elemBytes
		}
		n.sendTree(in, parent, &colMsg{
			ph:    phaseUp,
			data:  copyRankMap(in.byRank),
			bytes: bytes,
		}, true, in.key.kd == kGather)
	}
	n.checkLocalData(in)
}

// rootUpComplete runs on relative rank 0 when all contributions arrived.
func (n *node) rootUpComplete(in *inst) {
	t := in.t
	switch in.key.kd {
	case kBarrier:
		n.forwardDown(in)
	case kReduce:
		in.h.result = in.vec
	case kAllreduce:
		in.h.result = append([]int64(nil), in.vec...)
		in.dataIn = in.vec
		in.haveData = true
		n.forwardDown(in)
	case kGather:
		out := make([]any, t.Size())
		for tr, v := range in.byRank {
			out[tr] = v
		}
		in.h.result = out
	case kScan:
		// Inclusive prefix in team-rank order.
		bundle := make(map[int]any, t.Size())
		var acc []int64
		for tr := 0; tr < t.Size(); tr++ {
			v := in.byRank[tr].([]int64)
			if acc == nil {
				acc = append([]int64(nil), v...)
			} else {
				in.op.combine(acc, v)
			}
			bundle[tr] = append([]int64(nil), acc...)
		}
		my := t.MustRank(n.img.Rank())
		in.h.result = bundle[my].([]int64)
		n.forwardBundles(in, bundle)
	case kSort:
		// Concatenate, sort, and hand back blocks matching each image's
		// original contribution size, in team-rank order.
		counts := make([]int, t.Size())
		var all []int64
		for tr := 0; tr < t.Size(); tr++ {
			v := in.byRank[tr].([]int64)
			counts[tr] = len(v)
			all = append(all, v...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		bundle := make(map[int]any, t.Size())
		off := 0
		for tr := 0; tr < t.Size(); tr++ {
			bundle[tr] = append([]int64(nil), all[off:off+counts[tr]]...)
			off += counts[tr]
		}
		my := t.MustRank(n.img.Rank())
		in.h.result = bundle[my].([]int64)
		n.forwardBundles(in, bundle)
	}
	n.checkLocalData(in)
	n.maybeFinish(in)
}

// forwardDown pushes the down-phase payload (barrier pulse, broadcast
// data, or allreduce result) to this node's children.
func (n *node) forwardDown(in *inst) {
	for _, c := range in.children {
		dst := absOf(c, in.key.root, in.t.Size())
		m := &colMsg{ph: phaseDown, bytes: msgHeaderBytes}
		switch in.key.kd {
		case kBcast:
			m.data = in.dataIn
			m.bytes += in.elemBytes
		case kAllreduce:
			m.vec = in.dataIn.([]int64)
			m.bytes += 8 * len(m.vec)
		}
		needInject := in.key.kd == kBcast && in.relRank == 0
		n.sendTree(in, dst, m, true, needInject)
	}
	in.downDone = true
}

// forwardBundles routes per-team-rank payloads down the tree: each child
// receives the entries for its binomial subtree.
func (n *node) forwardBundles(in *inst, bundle map[int]any) {
	size := in.t.Size()
	for _, c := range in.children {
		span := n.spanOf(c, size)
		sub := make(map[int]any)
		bytes := msgHeaderBytes
		for rel := c; rel < c+span && rel < size; rel++ {
			tr := absOf(rel, in.key.root, size)
			if v, ok := bundle[tr]; ok {
				sub[tr] = v
				bytes += in.elemBytes
			}
		}
		dst := absOf(c, in.key.root, size)
		needInject := in.relRank == 0 && in.key.kd == kScatter
		n.sendTree(in, dst, &colMsg{ph: phaseDown, data: sub, bytes: bytes}, true, needInject)
	}
	in.downDone = true
}

// subtreeSpanOf returns the width of rel's contiguous binomial subtree.
func subtreeSpanOf(rel, size int) int {
	if rel == 0 {
		return size
	}
	return rel & -rel
}

// advanceDown processes a down-phase arrival.
func (n *node) advanceDown(in *inst) {
	switch in.key.kd {
	case kBarrier:
		n.forwardDown(in)
	case kBcast:
		if in.started {
			in.h.result = in.dataIn
		}
		n.forwardDown(in)
	case kAllreduce:
		vec := in.dataIn.([]int64)
		if in.started {
			in.h.result = append([]int64(nil), vec...)
		}
		n.forwardDown(in)
	case kScatter, kScan, kSort:
		bundle := in.dataIn.(map[int]any)
		my := in.t.MustRank(n.img.Rank())
		in.byRank[my] = bundle[my]
		if in.started {
			in.h.result = bundle[my]
		}
		n.forwardBundles(in, bundle)
	}
	n.checkLocalData(in)
	n.maybeFinish(in)
}

// tryFinishDirect checks alltoall completion (all receipts present).
func (n *node) tryFinishDirect(in *inst) {
	if !in.started || in.direct > 0 {
		return
	}
	n.checkLocalData(in)
	n.maybeFinish(in)
}

// checkLocalData fires the handle's local-data completion when the
// per-kind condition holds (paper Fig. 4 semantics).
func (n *node) checkLocalData(in *inst) {
	if !in.started || in.h == nil || in.h.localData {
		return
	}
	ready := false
	switch in.key.kd {
	case kBarrier:
		// Down pulse observed (root: up phase complete).
		ready = in.downDone
	case kBcast:
		if in.relRank == 0 {
			ready = in.downDone && in.injPending == 0
		} else {
			ready = in.haveData
		}
	case kReduce:
		if in.relRank == 0 {
			ready = in.upSent // reduction complete at root
		} else {
			ready = in.upSent && in.injPending == 0
		}
	case kAllreduce:
		ready = in.h.result != nil
	case kGather:
		if in.relRank == 0 {
			ready = in.h.result != nil
		} else {
			ready = in.upSent && in.injPending == 0
		}
	case kScatter:
		if in.relRank == 0 {
			ready = in.downDone && in.injPending == 0
		} else {
			ready = in.haveData
		}
	case kAlltoall:
		ready = in.direct == 0 && in.injPending == 0
		if ready && in.h.result == nil {
			out := make([]any, in.t.Size())
			for tr, v := range in.byRank {
				out[tr] = v
			}
			in.h.result = out
		}
	case kScan, kSort:
		ready = in.h.result != nil
	}
	if ready {
		in.h.fireLocalData()
	}
}

func copyRankMap(m map[int]any) map[int]any {
	out := make(map[int]any, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ---------------------------------------------------------------------
// Public API — asynchronous variants.
// ---------------------------------------------------------------------

// BarrierAsync begins a split-phase barrier over t.
func (c *Comm) BarrierAsync(img *rt.ImageKernel, t *team.Team, track any) *Handle {
	return c.start(img, t, kBarrier, 0, Sum, nil, nil, 0, track)
}

// BroadcastAsync begins an asynchronous broadcast of val (bytes wide)
// from team rank root.
func (c *Comm) BroadcastAsync(img *rt.ImageKernel, t *team.Team, root int, val any, bytes int, track any) *Handle {
	return c.start(img, t, kBcast, root, Sum, nil, val, bytes, track)
}

// ReduceAsync begins an asynchronous reduction of vec to team rank root.
func (c *Comm) ReduceAsync(img *rt.ImageKernel, t *team.Team, root int, op Op, vec []int64, track any) *Handle {
	return c.start(img, t, kReduce, root, op, vec, nil, 0, track)
}

// AllreduceAsync begins an asynchronous all-reduce of vec.
func (c *Comm) AllreduceAsync(img *rt.ImageKernel, t *team.Team, op Op, vec []int64, track any) *Handle {
	return c.start(img, t, kAllreduce, 0, op, vec, nil, 0, track)
}

// GatherAsync begins an asynchronous gather of val (bytes wide) to root.
func (c *Comm) GatherAsync(img *rt.ImageKernel, t *team.Team, root int, val any, bytes int, track any) *Handle {
	return c.start(img, t, kGather, root, Sum, nil, val, bytes, track)
}

// ScatterAsync begins an asynchronous scatter. On the root, vals holds one
// value per team rank (each bytes wide); elsewhere vals is ignored.
func (c *Comm) ScatterAsync(img *rt.ImageKernel, t *team.Team, root int, vals []any, bytes int, track any) *Handle {
	var data any
	if t.MustRank(img.Rank()) == root {
		data = vals
	}
	return c.start(img, t, kScatter, root, Sum, nil, data, bytes, track)
}

// AlltoallAsync begins an asynchronous all-to-all exchange; vals holds one
// value per team rank.
func (c *Comm) AlltoallAsync(img *rt.ImageKernel, t *team.Team, vals []any, bytes int, track any) *Handle {
	anyVals := make([]any, len(vals))
	copy(anyVals, vals)
	return c.start(img, t, kAlltoall, 0, Sum, nil, anyVals, bytes, track)
}

// ScanAsync begins an asynchronous inclusive prefix reduction in
// team-rank order.
func (c *Comm) ScanAsync(img *rt.ImageKernel, t *team.Team, op Op, vec []int64, track any) *Handle {
	return c.start(img, t, kScan, 0, op, vec, nil, 8*len(vec), track)
}

// SortAsync begins an asynchronous parallel sort: the concatenation of all
// images' keys is sorted and redistributed so team rank order yields a
// globally sorted sequence, with each image keeping its original count.
func (c *Comm) SortAsync(img *rt.ImageKernel, t *team.Team, keys []int64, track any) *Handle {
	return c.start(img, t, kSort, 0, Sum, keys, nil, 8*max(1, len(keys)), track)
}

// ---------------------------------------------------------------------
// Public API — synchronous variants (block proc p until local data
// completion, which for rooted ops means "this image's role produced its
// value"; see package doc).
// ---------------------------------------------------------------------

// Barrier blocks until every member of t has entered the barrier.
func (c *Comm) Barrier(p *sim.Proc, img *rt.ImageKernel, t *team.Team) {
	c.BarrierAsync(img, t, nil).WaitLocalData(p)
}

// Broadcast distributes val (bytes wide) from team rank root and returns
// the received value.
func (c *Comm) Broadcast(p *sim.Proc, img *rt.ImageKernel, t *team.Team, root int, val any, bytes int) any {
	h := c.BroadcastAsync(img, t, root, val, bytes, nil)
	h.WaitLocalData(p)
	return h.Result()
}

// Reduce folds vec across t; the result is returned at the root, nil
// elsewhere.
func (c *Comm) Reduce(p *sim.Proc, img *rt.ImageKernel, t *team.Team, root int, op Op, vec []int64) []int64 {
	h := c.ReduceAsync(img, t, root, op, vec, nil)
	h.WaitLocalData(p)
	if h.Result() == nil {
		return nil
	}
	return h.Result().([]int64)
}

// Allreduce folds vec across t and returns the result on every member.
func (c *Comm) Allreduce(p *sim.Proc, img *rt.ImageKernel, t *team.Team, op Op, vec []int64) []int64 {
	h := c.AllreduceAsync(img, t, op, vec, nil)
	h.WaitLocalData(p)
	return h.Result().([]int64)
}

// Gather collects each member's val at root, returning the team-rank
// ordered slice there and nil elsewhere.
func (c *Comm) Gather(p *sim.Proc, img *rt.ImageKernel, t *team.Team, root int, val any, bytes int) []any {
	h := c.GatherAsync(img, t, root, val, bytes, nil)
	h.WaitLocalData(p)
	if h.Result() == nil {
		return nil
	}
	return h.Result().([]any)
}

// Scatter distributes vals from root; every member returns its element.
func (c *Comm) Scatter(p *sim.Proc, img *rt.ImageKernel, t *team.Team, root int, vals []any, bytes int) any {
	h := c.ScatterAsync(img, t, root, vals, bytes, nil)
	h.WaitLocalData(p)
	return h.Result()
}

// Alltoall exchanges vals pairwise; entry i of the result came from team
// rank i.
func (c *Comm) Alltoall(p *sim.Proc, img *rt.ImageKernel, t *team.Team, vals []any, bytes int) []any {
	h := c.AlltoallAsync(img, t, vals, bytes, nil)
	h.WaitLocalData(p)
	return h.Result().([]any)
}

// Scan returns the inclusive prefix reduction of vec in team-rank order.
func (c *Comm) Scan(p *sim.Proc, img *rt.ImageKernel, t *team.Team, op Op, vec []int64) []int64 {
	h := c.ScanAsync(img, t, op, vec, nil)
	h.WaitLocalData(p)
	return h.Result().([]int64)
}

// Sort globally sorts the members' keys (see SortAsync).
func (c *Comm) Sort(p *sim.Proc, img *rt.ImageKernel, t *team.Team, keys []int64) []int64 {
	h := c.SortAsync(img, t, keys, nil)
	h.WaitLocalData(p)
	return h.Result().([]int64)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
