package collect

import (
	"fmt"
	"testing"
	"testing/quick"

	"caf2go/internal/fabric"
	"caf2go/internal/rt"
	"caf2go/internal/sim"
	"caf2go/internal/team"
)

// runSPMD spins up an n-image machine, runs body on every image in its own
// proc, and returns the engine's final virtual time.
func runSPMD(t testing.TB, n int, seed int64, body func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team)) sim.Time {
	t.Helper()
	eng := sim.NewEngine(seed)
	k := rt.NewKernel(eng, n, fabric.DefaultConfig())
	c := New(k)
	w := team.World(n)
	for i := 0; i < n; i++ {
		img := k.Image(i)
		img.Go("main", func(p *sim.Proc) { body(p, img, c, w) })
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return eng.Now()
}

var teamSizes = []int{1, 2, 3, 4, 5, 7, 8, 16, 33}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range teamSizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			exits := make([]sim.Time, n)
			var lastEnter sim.Time
			runSPMD(t, n, 1, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
				// Stagger arrivals.
				p.Sleep(sim.Time(img.Rank()) * 10 * sim.Microsecond)
				if p.Now() > lastEnter {
					lastEnter = p.Now()
				}
				c.Barrier(p, img, w)
				exits[img.Rank()] = p.Now()
			})
			for i, e := range exits {
				if e < lastEnter {
					t.Errorf("image %d exited barrier at %v before last entry %v", i, e, lastEnter)
				}
			}
		})
	}
}

func TestBroadcastAllRootsAllSizes(t *testing.T) {
	for _, n := range teamSizes {
		for root := 0; root < n; root += 1 + n/3 {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				got := make([]any, n)
				runSPMD(t, n, 1, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
					var val any
					if img.Rank() == root {
						val = "payload-from-" + fmt.Sprint(root)
					}
					got[img.Rank()] = c.Broadcast(p, img, w, root, val, 64)
				})
				want := "payload-from-" + fmt.Sprint(root)
				for i, g := range got {
					if g != want {
						t.Errorf("image %d got %v", i, g)
					}
				}
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range teamSizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			root := n / 2
			var atRoot []int64
			runSPMD(t, n, 1, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
				r := img.Rank()
				res := c.Reduce(p, img, w, root, Sum, []int64{int64(r), 1})
				if r == root {
					atRoot = res
				} else if res != nil {
					t.Errorf("non-root %d got result %v", r, res)
				}
			})
			wantSum := int64(n*(n-1)) / 2
			if atRoot == nil || atRoot[0] != wantSum || atRoot[1] != int64(n) {
				t.Errorf("reduce = %v, want [%d %d]", atRoot, wantSum, n)
			}
		})
	}
}

func TestAllreduceOps(t *testing.T) {
	cases := []struct {
		op   Op
		want func(n int) int64
	}{
		{Sum, func(n int) int64 { return int64(n*(n-1)) / 2 }},
		{Max, func(n int) int64 { return int64(n - 1) }},
		{Min, func(n int) int64 { return 0 }},
		{BOr, func(n int) int64 {
			var v int64
			for i := 0; i < n; i++ {
				v |= int64(i)
			}
			return v
		}},
		{BXor, func(n int) int64 {
			var v int64
			for i := 0; i < n; i++ {
				v ^= int64(i)
			}
			return v
		}},
	}
	for _, n := range []int{1, 2, 5, 8, 16} {
		for _, tc := range cases {
			n, tc := n, tc
			t.Run(fmt.Sprintf("n=%d op=%v", n, tc.op), func(t *testing.T) {
				results := make([][]int64, n)
				runSPMD(t, n, 1, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
					results[img.Rank()] = c.Allreduce(p, img, w, tc.op, []int64{int64(img.Rank())})
				})
				for i, res := range results {
					if res[0] != tc.want(n) {
						t.Errorf("image %d: allreduce(%v) = %d, want %d", i, tc.op, res[0], tc.want(n))
					}
				}
			})
		}
	}
}

func TestProdAndBAnd(t *testing.T) {
	results := make([][]int64, 4)
	runSPMD(t, 4, 1, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
		r := int64(img.Rank())
		v := c.Allreduce(p, img, w, Prod, []int64{r + 1})
		v2 := c.Allreduce(p, img, w, BAnd, []int64{r | 8})
		results[img.Rank()] = []int64{v[0], v2[0]}
	})
	for i, res := range results {
		if res[0] != 24 {
			t.Errorf("image %d: prod = %d, want 24", i, res[0])
		}
		if res[1] != 8 {
			t.Errorf("image %d: band = %d, want 8", i, res[1])
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	for _, n := range teamSizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			root := n - 1
			got := make([]any, n)
			runSPMD(t, n, 1, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
				r := img.Rank()
				gathered := c.Gather(p, img, w, root, r*r, 8)
				var vals []any
				if r == root {
					if len(gathered) != n {
						t.Errorf("gather len = %d", len(gathered))
					}
					vals = make([]any, n)
					for i, g := range gathered {
						vals[i] = g.(int) + 1 // transform to prove data flows through root
					}
				}
				got[r] = c.Scatter(p, img, w, root, vals, 8)
			})
			for i, g := range got {
				if g != i*i+1 {
					t.Errorf("image %d got %v, want %d", i, g, i*i+1)
				}
			}
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 9} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			got := make([][]any, n)
			runSPMD(t, n, 1, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
				r := img.Rank()
				vals := make([]any, n)
				for i := range vals {
					vals[i] = fmt.Sprintf("%d->%d", r, i)
				}
				got[r] = c.Alltoall(p, img, w, vals, 16)
			})
			for dst := 0; dst < n; dst++ {
				for src := 0; src < n; src++ {
					if want := fmt.Sprintf("%d->%d", src, dst); got[dst][src] != want {
						t.Errorf("alltoall[%d][%d] = %v, want %v", dst, src, got[dst][src], want)
					}
				}
			}
		})
	}
}

func TestScanInclusivePrefix(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			got := make([][]int64, n)
			runSPMD(t, n, 1, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
				got[img.Rank()] = c.Scan(p, img, w, Sum, []int64{int64(img.Rank() + 1)})
			})
			for i, res := range got {
				want := int64((i + 1) * (i + 2) / 2)
				if res[0] != want {
					t.Errorf("scan at %d = %d, want %d", i, res[0], want)
				}
			}
		})
	}
}

func TestSortRedistributes(t *testing.T) {
	n := 4
	got := make([][]int64, n)
	runSPMD(t, n, 1, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
		r := img.Rank()
		// Image r contributes descending keys interleaved across images.
		keys := []int64{int64(100 - r), int64(10 - r), int64(50 + r)}
		got[r] = c.Sort(p, img, w, keys)
	})
	var flat []int64
	for _, g := range got {
		if len(g) != 3 {
			t.Fatalf("sort changed per-image count: %v", got)
		}
		flat = append(flat, g...)
	}
	for i := 1; i < len(flat); i++ {
		if flat[i-1] > flat[i] {
			t.Fatalf("global order violated: %v", flat)
		}
	}
}

func TestSubteamCollectives(t *testing.T) {
	// Split world into even/odd teams and run disjoint allreduces.
	n := 8
	results := make([]int64, n)
	eng := sim.NewEngine(1)
	k := rt.NewKernel(eng, n, fabric.DefaultConfig())
	c := New(k)
	w := team.World(n)
	specs := make([]team.SplitSpec, n)
	for i := 0; i < n; i++ {
		specs[i] = team.SplitSpec{World: i, Color: i % 2, Key: i}
	}
	teams, err := team.Split(w, specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		img := k.Image(i)
		img.Go("main", func(p *sim.Proc) {
			tm := teams[img.Rank()%2]
			res := c.Allreduce(p, img, tm, Sum, []int64{int64(img.Rank())})
			results[img.Rank()] = res[0]
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		want := int64(0 + 2 + 4 + 6)
		if i%2 == 1 {
			want = 1 + 3 + 5 + 7
		}
		if r != want {
			t.Errorf("image %d: team allreduce = %d, want %d", i, r, want)
		}
	}
}

func TestAsyncBroadcastCompletionStages(t *testing.T) {
	// Paper Fig. 4: on a participant, local data completion (data ready)
	// precedes local operation completion (forwarding done) when the
	// participant has children to forward to.
	n := 8
	var ldAt, loAt sim.Time
	runSPMD(t, n, 1, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
		var val any
		if img.Rank() == 0 {
			val = 99
		}
		h := c.BroadcastAsync(img, w, 0, val, 32, nil)
		h.WaitLocalData(p)
		if h.Result() != 99 {
			t.Errorf("image %d: result %v", img.Rank(), h.Result())
		}
		if img.Rank() == 1 {
			// Team rank 1 is an interior node (children 3,5 at n=8 via
			// binomial rel ranks)? rank 1 rel=1: leaf. Use rank 2 (rel 2,
			// child 3) instead — recorded below.
		}
		if img.Rank() == 2 {
			ldAt = p.Now()
		}
		h.WaitLocalOp(p)
		if img.Rank() == 2 {
			loAt = p.Now()
		}
	})
	if !(ldAt > 0 && loAt > ldAt) {
		t.Errorf("interior node: local data at %v, local op at %v; want data strictly earlier", ldAt, loAt)
	}
}

func TestAsyncOverlapsComputation(t *testing.T) {
	// An async allreduce must let the caller compute while in flight:
	// total time ≈ max(compute, collective), not the sum.
	n := 16
	compute := 5 * sim.Millisecond
	syncTime := runSPMD(t, n, 1, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
		c.Allreduce(p, img, w, Sum, []int64{1})
		p.Sleep(compute)
	})
	asyncTime := runSPMD(t, n, 1, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
		h := c.AllreduceAsync(img, w, Sum, []int64{1}, nil)
		p.Sleep(compute) // overlap
		h.WaitLocalData(p)
		if h.Result().([]int64)[0] != int64(n) {
			t.Errorf("allreduce = %v", h.Result())
		}
	})
	if asyncTime >= syncTime {
		t.Errorf("async (%v) did not beat sync-then-compute (%v)", asyncTime, syncTime)
	}
}

func TestManySequentialCollectivesGC(t *testing.T) {
	// Instances must be garbage-collected; run enough rounds that leaks
	// would be obvious via the insts maps.
	n := 4
	eng := sim.NewEngine(1)
	k := rt.NewKernel(eng, n, fabric.DefaultConfig())
	c := New(k)
	w := team.World(n)
	const rounds = 200
	for i := 0; i < n; i++ {
		img := k.Image(i)
		img.Go("main", func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				res := c.Allreduce(p, img, w, Sum, []int64{1})
				if res[0] != int64(n) {
					t.Errorf("round %d: %v", r, res)
				}
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, node := range c.nodes {
		if len(node.insts) != 0 {
			t.Errorf("image %d leaked %d collective instances", i, len(node.insts))
		}
	}
}

func TestBarrierScalesLogarithmically(t *testing.T) {
	// Critical path of a binomial barrier is O(log p): time for p=256
	// must be far less than 256/8 × time for p=8.
	t8 := runSPMD(t, 8, 1, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
		c.Barrier(p, img, w)
	})
	t256 := runSPMD(t, 256, 1, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
		c.Barrier(p, img, w)
	})
	if t256 > 4*t8 {
		t.Errorf("barrier at 256 images (%v) more than 4x barrier at 8 (%v): not log-scaling", t256, t8)
	}
}

// Property: allreduce(SUM) over random vectors equals the element-wise sum,
// for random team sizes.
func TestPropertyAllreduceSum(t *testing.T) {
	prop := func(seed int64, raw []int8, width uint8) bool {
		n := len(raw)
		if n == 0 || n > 24 {
			return true
		}
		wlen := int(width%4) + 1
		contribs := make([][]int64, n)
		want := make([]int64, wlen)
		for i, b := range raw {
			v := make([]int64, wlen)
			for j := range v {
				v[j] = int64(b) * int64(j+1)
				want[j] += v[j]
			}
			contribs[i] = v
		}
		okAll := true
		runSPMD(t, n, seed, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
			res := c.Allreduce(p, img, w, Sum, contribs[img.Rank()])
			for j := range want {
				if res[j] != want[j] {
					okAll = false
				}
			}
		})
		return okAll
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: gather preserves every contribution at the right index.
func TestPropertyGather(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		n := int(sz%20) + 1
		root := int(seed%int64(n)+int64(n)) % n
		ok := true
		runSPMD(t, n, seed, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
			res := c.Gather(p, img, w, root, img.Rank()*7, 8)
			if img.Rank() == root {
				for i, v := range res {
					if v != i*7 {
						ok = false
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTreeHelpers(t *testing.T) {
	if p := parentRel(6); p != 4 {
		t.Errorf("parent(6) = %d", p)
	}
	if p := parentRel(5); p != 4 {
		t.Errorf("parent(5) = %d", p)
	}
	kids := childrenRel(0, 8)
	if len(kids) != 3 || kids[0] != 1 || kids[1] != 2 || kids[2] != 4 {
		t.Errorf("children(0,8) = %v", kids)
	}
	kids = childrenRel(4, 8)
	if len(kids) != 2 || kids[0] != 5 || kids[1] != 6 {
		t.Errorf("children(4,8) = %v", kids)
	}
	if s := subtreeSize(0, 8); s != 8 {
		t.Errorf("subtree(0,8) = %d", s)
	}
	if s := subtreeSize(4, 6); s != 2 {
		t.Errorf("subtree(4,6) = %d", s)
	}
	// Every non-root rel rank's parent must have it as a child.
	for size := 1; size <= 33; size++ {
		for r := 1; r < size; r++ {
			p := parentRel(r)
			found := false
			for _, c := range childrenRel(p, size) {
				if c == r {
					found = true
				}
			}
			if !found {
				t.Fatalf("size %d: %d not a child of its parent %d", size, r, p)
			}
		}
	}
}

func BenchmarkAllreduce64(b *testing.B) {
	eng := sim.NewEngine(1)
	k := rt.NewKernel(eng, 64, fabric.DefaultConfig())
	c := New(k)
	w := team.World(64)
	rounds := b.N
	for i := 0; i < 64; i++ {
		img := k.Image(i)
		img.Go("main", func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				c.Allreduce(p, img, w, Sum, []int64{1})
			}
		})
	}
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestFlatTreeCorrectness(t *testing.T) {
	// All collectives must remain correct with the flat (star) tree.
	n := 9
	eng := sim.NewEngine(1)
	k := rt.NewKernel(eng, n, fabric.DefaultConfig())
	c := NewWithTree(k, Flat)
	if c.TreeShape() != Flat {
		t.Fatal("tree shape not recorded")
	}
	w := team.World(n)
	sums := make([]int64, n)
	gathered := make([][]any, n)
	for i := 0; i < n; i++ {
		img := k.Image(i)
		img.Go("main", func(p *sim.Proc) {
			c.Barrier(p, img, w)
			sums[img.Rank()] = c.Allreduce(p, img, w, Sum, []int64{int64(img.Rank())})[0]
			got := c.Broadcast(p, img, w, 2, "flat", 8)
			if got != "flat" {
				t.Errorf("image %d: broadcast = %v", img.Rank(), got)
			}
			gathered[img.Rank()] = c.Gather(p, img, w, 0, img.Rank()*3, 8)
			scanned := c.Scan(p, img, w, Sum, []int64{1})
			if scanned[0] != int64(img.Rank()+1) {
				t.Errorf("image %d: scan = %v", img.Rank(), scanned)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, s := range sums {
		if s != 36 {
			t.Errorf("image %d: allreduce = %d", i, s)
		}
	}
	for i, g := range gathered[0] {
		if g != i*3 {
			t.Errorf("gather[%d] = %v", i, g)
		}
	}
}

func TestFlatTreeSlowerAtScale(t *testing.T) {
	// The ablation's point: a flat barrier's critical path is O(p), a
	// binomial one O(log p).
	timeFor := func(tree Tree) sim.Time {
		eng := sim.NewEngine(1)
		k := rt.NewKernel(eng, 128, fabric.DefaultConfig())
		c := NewWithTree(k, tree)
		w := team.World(128)
		for i := 0; i < 128; i++ {
			img := k.Image(i)
			img.Go("main", func(p *sim.Proc) {
				for r := 0; r < 4; r++ {
					c.Barrier(p, img, w)
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	flat, binomial := timeFor(Flat), timeFor(Binomial)
	if flat <= binomial {
		t.Errorf("flat barrier (%v) not slower than binomial (%v) at 128 images", flat, binomial)
	}
}

// Property: scan over random vectors equals the locally computed prefix,
// and sort produces a globally ordered permutation of the inputs.
func TestPropertyScanAndSort(t *testing.T) {
	prop := func(seed int64, sz uint8, raw []int8) bool {
		n := int(sz%10) + 1
		if len(raw) == 0 {
			return true
		}
		contribs := make([]int64, n)
		for i := range contribs {
			contribs[i] = int64(raw[i%len(raw)])
		}
		scanOK, sortOK := true, true
		sorted := make([][]int64, n)
		runSPMD(t, n, seed, func(p *sim.Proc, img *rt.ImageKernel, c *Comm, w *team.Team) {
			r := img.Rank()
			res := c.Scan(p, img, w, Sum, []int64{contribs[r]})
			var want int64
			for i := 0; i <= r; i++ {
				want += contribs[i]
			}
			if res[0] != want {
				scanOK = false
			}
			keys := []int64{contribs[r], -contribs[r]}
			sorted[r] = c.Sort(p, img, w, keys)
		})
		var flat []int64
		for _, s := range sorted {
			flat = append(flat, s...)
		}
		for i := 1; i < len(flat); i++ {
			if flat[i-1] > flat[i] {
				sortOK = false
			}
		}
		return scanOK && sortOK && len(flat) == 2*n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
