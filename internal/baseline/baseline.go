// Package baseline implements the termination-detection comparators the
// paper discusses so finish can be evaluated against them:
//
//   - BarrierFinish — the naive scheme of Fig. 5 (wait for locally
//     initiated spawns, then barrier), which is INCORRECT for transitive
//     spawn chains and exists to demonstrate exactly that;
//   - X10Finish — X10-style centralized vector counting (§V): each image
//     reports a per-place spawn vector to a home image on quiescence;
//     the home detects global termination when every place's completions
//     match the summed vectors. Correct, but the home receives p vectors
//     of size p — the O(p²) bottleneck the paper's distributed algorithm
//     avoids.
//
// Both run on the public caf API, outside any real finish block, so
// their spawns are untracked by the paper's detector.
package baseline

import (
	"fmt"

	caf "caf2go"
)

// SpawnFn is a shipped function under a baseline detector; it receives a
// spawn function so transitive spawns stay inside the protocol.
type SpawnFn func(img *caf.Image, spawn func(target int, fn SpawnFn))

// BarrierResult reports what the broken detector observed.
type BarrierResult struct {
	// ExitTime is when this image left the barrier, believing the
	// system terminated.
	ExitTime caf.Time
}

// BarrierFinish runs body with a spawn function whose direct completions
// are awaited locally (via events) before a team barrier. Transitively
// spawned functions are NOT awaited: a function that lands on an image
// after that image passed the barrier is silently missed — the Fig. 5
// failure. Use only to demonstrate the bug.
func BarrierFinish(img *caf.Image, body func(spawn func(target int, fn SpawnFn))) BarrierResult {
	outstanding := 0
	done := img.NewEvent()
	// Direct spawns are awaited; nested spawns run detached with no one
	// waiting — the flaw under demonstration.
	spawn := func(target int, fn SpawnFn) {
		outstanding++
		img.Spawn(target, func(remote *caf.Image) {
			fn(remote, detachedSpawn(remote))
		}, caf.WithEvent(done))
	}
	body(spawn)
	for i := 0; i < outstanding; i++ {
		img.EventWait(done)
	}
	img.Barrier(nil)
	return BarrierResult{ExitTime: img.Now()}
}

// detachedSpawn ships functions with no completion tracking at all.
func detachedSpawn(img *caf.Image) func(target int, fn SpawnFn) {
	return func(target int, fn SpawnFn) {
		img.Spawn(target, func(remote *caf.Image) {
			fn(remote, detachedSpawn(remote))
		}, caf.WithEvent(remote_noop(img)))
	}
}

// remote_noop allocates a throwaway event so the spawn is explicitly
// completed (and therefore invisible to any enclosing real finish).
func remote_noop(img *caf.Image) *caf.Event { return img.NewEvent() }

// ---------------------------------------------------------------------
// X10-style centralized finish.
// ---------------------------------------------------------------------

// xState is one image's bookkeeping for one X10Finish round.
type xState struct {
	spawnedTo []int64 // per-place spawns this image initiated
	completed int64   // activities completed on this image
	active    int64   // activities currently running here
	bodyDone  bool
	doneEv    *caf.Event
	dirty     bool
}

// xHome is the home image's view.
type xHome struct {
	vectors   [][]int64 // latest vector per reporter
	completed []int64   // latest completion count per reporter
	reported  []bool
	finished  bool
}

// X10Stats reports the centralized detector's costs.
type X10Stats struct {
	// Reports is the number of vector reports the home image received.
	Reports int64
	// ReportBytes is the total size of those vectors — Θ(p) each, the
	// scaling bottleneck (§V).
	ReportBytes int64
}

// x10Run is the state of one X10Finish round across all images.
type x10Run struct {
	key    uint64
	shared *X10Shared
	ref    int
	states []*xState
	home   *xHome
	stats  X10Stats
}

// X10Finish runs body under a centralized vector-counting detector with
// the given home image. Every image of the machine must call it
// (SPMD). It blocks until global termination of all (transitive)
// spawns, like finish, but detection is centralized at home.
//
// The shared run state is allocated by world rank 0 through a barrier
// handshake; the function is self-contained per call site.
func X10Finish(img *caf.Image, home int, shared *X10Shared, body func(spawn func(target int, fn SpawnFn))) X10Stats {
	p := img.NumImages()
	run := shared.get(img, p, home)
	st := run.states[img.Rank()]

	var doSpawn func(self *caf.Image, target int, fn SpawnFn)
	doSpawn = func(self *caf.Image, target int, fn SpawnFn) {
		runSt := run.states[self.Rank()]
		runSt.spawnedTo[target]++
		runSt.dirty = true
		ev := self.NewEvent() // explicit completion: untracked by real finish
		self.Spawn(target, func(remote *caf.Image) {
			rst := run.ensureState(remote)
			rst.active++
			fn(remote, func(t int, f SpawnFn) { doSpawn(remote, t, f) })
			rst.active--
			rst.completed++
			rst.dirty = true
			maybeReport(remote, run, home)
		}, caf.WithEvent(ev))
	}

	body(func(target int, fn SpawnFn) { doSpawn(img, target, fn) })
	st.bodyDone = true
	st.dirty = true
	maybeReport(img, run, home)
	img.EventWait(st.doneEv)
	img.Barrier(nil)
	stats := run.stats
	shared.release(run)
	return stats
}

// X10Shared holds cross-image state for X10Finish rounds; allocate one
// per machine (outside Launch) and pass it to every image. Rounds are
// matched by a per-image sequence number, so overlapping entry/exit of
// consecutive rounds is safe.
type X10Shared struct {
	runs map[uint64]*x10Run
	seq  map[int]uint64
}

// NewX10Shared allocates the shared holder.
func NewX10Shared() *X10Shared {
	return &X10Shared{runs: make(map[uint64]*x10Run), seq: make(map[int]uint64)}
}

func (s *X10Shared) get(img *caf.Image, p, home int) *x10Run {
	s.seq[img.Rank()]++
	key := s.seq[img.Rank()]
	run, ok := s.runs[key]
	if !ok {
		run = &x10Run{
			key:    key,
			shared: s,
			states: make([]*xState, p),
			home: &xHome{
				vectors:   make([][]int64, p),
				completed: make([]int64, p),
				reported:  make([]bool, p),
			},
		}
		s.runs[key] = run
	}
	run.ensureState(img)
	run.ref++
	return run
}

// ensureState lazily builds an image's state — an inbound activity may
// land before the image itself entered the X10Finish call.
func (r *x10Run) ensureState(img *caf.Image) *xState {
	st := r.states[img.Rank()]
	if st == nil {
		st = &xState{
			spawnedTo: make([]int64, len(r.states)),
			doneEv:    img.NewEvent(),
		}
		r.states[img.Rank()] = st
	}
	return st
}

func (s *X10Shared) release(run *x10Run) {
	run.ref--
	if run.ref == 0 {
		delete(s.runs, run.key)
	}
}

// maybeReport sends this image's vector to the home when it is idle.
func maybeReport(img *caf.Image, run *x10Run, home int) {
	st := run.states[img.Rank()]
	if !st.bodyDone || st.active > 0 || !st.dirty {
		return
	}
	st.dirty = false
	vec := append([]int64(nil), st.spawnedTo...)
	completed := st.completed
	from := img.Rank()
	bytes := 8*len(vec) + 16
	run.stats.Reports++
	run.stats.ReportBytes += int64(bytes)
	img.Spawn(home, func(h *caf.Image) {
		hm := run.home
		hm.vectors[from] = vec
		hm.completed[from] = completed
		hm.reported[from] = true
		checkTermination(h, run)
	}, caf.WithBytes(bytes), caf.WithEvent(img.NewEvent()))
}

// checkTermination runs on the home image after each report.
func checkTermination(h *caf.Image, run *x10Run) {
	hm := run.home
	if hm.finished {
		return
	}
	p := h.NumImages()
	for _, r := range hm.reported {
		if !r {
			return
		}
	}
	for dest := 0; dest < p; dest++ {
		var spawned int64
		for w := 0; w < p; w++ {
			spawned += hm.vectors[w][dest]
		}
		if spawned != hm.completed[dest] {
			return
		}
	}
	hm.finished = true
	for i := 0; i < p; i++ {
		i := i
		h.Spawn(i, func(r *caf.Image) {
			r.EventNotify(run.states[r.Rank()].doneEv)
		}, caf.WithEvent(h.NewEvent()))
	}
}

func (s X10Stats) String() string {
	return fmt.Sprintf("x10(reports=%d, bytes=%d)", s.Reports, s.ReportBytes)
}
