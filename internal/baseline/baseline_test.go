package baseline

import (
	"testing"

	caf "caf2go"
)

// TestBarrierDetectionFails reproduces the Fig. 5 scenario: p ships f1 to
// q, f1 ships f2 to r, and the barrier-based scheme lets images exit
// before f2 completes — exactly why CAF 2.0 needed finish.
func TestBarrierDetectionFails(t *testing.T) {
	var f2Done caf.Time
	exits := make([]caf.Time, 3)
	_, err := caf.Run(caf.Config{Images: 3, Seed: 1}, func(img *caf.Image) {
		res := BarrierFinish(img, func(spawn func(int, SpawnFn)) {
			if img.Rank() != 0 {
				return
			}
			spawn(1, func(q *caf.Image, nested func(int, SpawnFn)) {
				q.Compute(caf.Millisecond)
				nested(2, func(r *caf.Image, _ func(int, SpawnFn)) {
					r.Compute(5 * caf.Millisecond) // f2 takes a while
					f2Done = r.Now()
				})
			})
		})
		exits[img.Rank()] = res.ExitTime
	})
	if err != nil {
		t.Fatal(err)
	}
	if f2Done == 0 {
		t.Fatal("f2 never ran")
	}
	for i, e := range exits {
		if e >= f2Done {
			return // at least one image correctly stayed? No: we need ALL exits checked
		}
		_ = i
	}
	// Every image exited before f2 completed: the failure is total. For
	// the demonstration it suffices that ANY image exited early:
	early := false
	for _, e := range exits {
		if e < f2Done {
			early = true
		}
	}
	if !early {
		t.Fatal("barrier-based detection unexpectedly waited for the transitive spawn")
	}
}

// TestRealFinishHandlesFig5 is the control: the same workload under the
// paper's finish construct never exits early.
func TestRealFinishHandlesFig5(t *testing.T) {
	var f2Done caf.Time
	exits := make([]caf.Time, 3)
	_, err := caf.Run(caf.Config{Images: 3, Seed: 1}, func(img *caf.Image) {
		img.Finish(nil, func() {
			if img.Rank() != 0 {
				return
			}
			img.Spawn(1, func(q *caf.Image) {
				q.Compute(caf.Millisecond)
				q.Spawn(2, func(r *caf.Image) {
					r.Compute(5 * caf.Millisecond)
					f2Done = r.Now()
				})
			})
		})
		exits[img.Rank()] = img.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range exits {
		if e < f2Done {
			t.Errorf("image %d exited finish at %v before f2 completed at %v", i, e, f2Done)
		}
	}
}

func TestX10FinishCorrectOnTransitiveChains(t *testing.T) {
	var f2Done caf.Time
	exits := make([]caf.Time, 4)
	shared := NewX10Shared()
	_, err := caf.Run(caf.Config{Images: 4, Seed: 1}, func(img *caf.Image) {
		X10Finish(img, 0, shared, func(spawn func(int, SpawnFn)) {
			if img.Rank() != 0 {
				return
			}
			spawn(1, func(q *caf.Image, nested func(int, SpawnFn)) {
				q.Compute(caf.Millisecond)
				nested(2, func(r *caf.Image, nested2 func(int, SpawnFn)) {
					r.Compute(2 * caf.Millisecond)
					nested2(3, func(s *caf.Image, _ func(int, SpawnFn)) {
						s.Compute(3 * caf.Millisecond)
						f2Done = s.Now()
					})
				})
			})
		})
		exits[img.Rank()] = img.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if f2Done == 0 {
		t.Fatal("chain never completed")
	}
	for i, e := range exits {
		if e < f2Done {
			t.Errorf("image %d exited X10 finish at %v before chain end %v", i, e, f2Done)
		}
	}
}

func TestX10FinishEmptyBody(t *testing.T) {
	shared := NewX10Shared()
	_, err := caf.Run(caf.Config{Images: 8, Seed: 1}, func(img *caf.Image) {
		X10Finish(img, 3, shared, func(spawn func(int, SpawnFn)) {})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestX10FinishRepeatedRounds(t *testing.T) {
	shared := NewX10Shared()
	count := 0
	_, err := caf.Run(caf.Config{Images: 4, Seed: 1}, func(img *caf.Image) {
		for round := 0; round < 3; round++ {
			X10Finish(img, 0, shared, func(spawn func(int, SpawnFn)) {
				spawn((img.Rank()+1)%4, func(r *caf.Image, _ func(int, SpawnFn)) {
					r.Compute(100 * caf.Microsecond)
					count++
				})
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 12 {
		t.Errorf("completed spawns = %d, want 12", count)
	}
}

// TestX10ReportTrafficScalesWithP quantifies the §V criticism: the home
// image receives Θ(p) vectors of Θ(p) size, so report bytes grow
// superlinearly with machine size, while the paper's finish uses an
// O(log p) reduction per round.
func TestX10ReportTrafficScalesWithP(t *testing.T) {
	bytesFor := func(p int) int64 {
		shared := NewX10Shared()
		var stats X10Stats
		_, err := caf.Run(caf.Config{Images: p, Seed: 1}, func(img *caf.Image) {
			s := X10Finish(img, 0, shared, func(spawn func(int, SpawnFn)) {
				spawn((img.Rank()+1)%p, func(r *caf.Image, _ func(int, SpawnFn)) {})
			})
			if img.Rank() == 0 {
				stats = s
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.ReportBytes
	}
	b8, b32 := bytesFor(8), bytesFor(32)
	// p grew 4x; per-report size grew 4x and report count ≥ 4x, so
	// traffic should grow clearly superlinearly (≥ 8x).
	if b32 < 8*b8 {
		t.Errorf("report bytes grew only %d -> %d; expected superlinear growth", b8, b32)
	}
}
