package caf_test

import (
	"errors"
	"testing"

	caf "caf2go"
)

// crashCfg is a two-or-more-image machine where rank 1's NIC dies at
// 5µs and a tight detector declares it dead by ~8µs.
func crashCfg(n int, seed int64) caf.Config {
	return caf.Config{
		Images: n,
		Seed:   seed,
		Faults: &caf.FaultPlan{
			Seed:  seed,
			Crash: map[int]caf.Time{1: 5 * caf.Microsecond},
		},
		FailureDetector: caf.FailureDetectorConfig{
			Enabled:   true,
			Heartbeat: 1 * caf.Microsecond,
		},
	}
}

func wantImageFailed(t *testing.T, err error, dead int) *caf.ImageFailedError {
	t.Helper()
	if err == nil {
		t.Fatal("run with a crashed image reported success")
	}
	var ferr *caf.ImageFailedError
	if !errors.As(err, &ferr) {
		t.Fatalf("expected ImageFailedError, got %T: %v", err, err)
	}
	if ferr.Rank != dead {
		t.Fatalf("error blames rank %d, crashed rank %d: %v", ferr.Rank, dead, ferr)
	}
	return ferr
}

// TestEventWaitWokenByDeclaration: an image already parked in EventWait
// when the failure is declared must be woken and abort with a typed
// error — the notification it waits for died with the notifier.
func TestEventWaitWokenByDeclaration(t *testing.T) {
	_, err := caf.Run(crashCfg(2, 1), func(img *caf.Image) {
		if img.Rank() != 0 {
			// Rank 1 never notifies and crashes at 5µs.
			img.Compute(caf.Millisecond)
			return
		}
		e := img.NewEvent()
		img.EventWait(e) // parked well before the 8µs declaration
		t.Error("EventWait returned without a notification")
	})
	wantImageFailed(t, err, 1)
}

// TestEventWaitAfterDeclarationNotLost is the enqueue-vs-park race
// regression: the declaration fires while the waiter is still running
// (before it ever parks). Because the wait condition is evaluated
// before the first park, the standing declaration must abort the wait
// immediately — a notification-less event plus an already-declared
// death must never park forever.
func TestEventWaitAfterDeclarationNotLost(t *testing.T) {
	_, err := caf.Run(crashCfg(2, 2), func(img *caf.Image) {
		if img.Rank() != 0 {
			img.Compute(caf.Millisecond)
			return
		}
		e := img.NewEvent()
		// Stay runnable until well past the declaration, then wait: the
		// proc goes from running straight into EventWait with the death
		// already on the books.
		img.Compute(50 * caf.Microsecond)
		img.EventWait(e)
		t.Error("EventWait returned without a notification")
	})
	wantImageFailed(t, err, 1)
}

// TestLockOnDeadHostAborts: acquiring a lock hosted on a dead image
// goes through the failure-aware RPC path — the grant can never come,
// so the acquirer must abort instead of blocking forever.
func TestLockOnDeadHostAborts(t *testing.T) {
	_, err := caf.Run(crashCfg(2, 3), func(img *caf.Image) {
		if img.Rank() != 0 {
			img.Compute(caf.Millisecond)
			return
		}
		img.Compute(50 * caf.Microsecond) // past the declaration
		img.Lock(1, 0)
		t.Error("Lock on a dead host was granted")
	})
	wantImageFailed(t, err, 1)
}

// TestLockWaiterWokenByDeclaration: a lock RPC in flight to a host that
// then dies must wake and abort when the death is declared.
func TestLockWaiterWokenByDeclaration(t *testing.T) {
	_, err := caf.Run(crashCfg(2, 4), func(img *caf.Image) {
		if img.Rank() != 0 {
			img.Compute(caf.Millisecond)
			return
		}
		// Rank 1 dies at 5µs holding nothing; the RPC is issued at
		// t≈0, delivered before the crash, and the grant is returned —
		// or lost with the NIC. Either way rank 0 must not hang: it is
		// granted the lock or aborted by the declaration.
		img.Lock(1, 0)
		// Granted before the crash: the second acquisition can only
		// abort (the unlock below never reaches the dead host).
		img.Unlock(1, 0)
		img.Compute(50 * caf.Microsecond)
		img.Lock(1, 0)
		t.Error("re-acquiring a lock on a dead host succeeded")
	})
	wantImageFailed(t, err, 1)
}
