module caf2go

go 1.22
