// Command uts regenerates the paper's UTS figures and runs one-off
// Unbalanced Tree Search experiments:
//
//	uts -fig 16            # load balance across machine sizes (Fig. 16)
//	uts -fig 17            # parallel efficiency sweep (Fig. 17)
//	uts -fig 18            # termination-detection rounds (Fig. 18)
//	uts -single -images 64 -depth 9 [-nolifelines] [-nowait]
//
// Depth defaults to simulation scale; the paper's T1WL tree is -depth 18
// (≈10^11 nodes — not a laptop workload).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	caf "caf2go"
	"caf2go/internal/bench"
	"caf2go/internal/uts"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("uts: ")
	figNum := flag.Int("fig", 17, "figure to regenerate: 16, 17 or 18")
	single := flag.Bool("single", false, "run one configuration and print its result")
	images := flag.Int("images", 64, "single-run image count")
	depth := flag.Int("depth", 0, "tree depth (0 = figure default; paper T1WL = 18)")
	cores := flag.String("cores", "", "override core sweep (comma-separated)")
	noLifelines := flag.Bool("nolifelines", false, "disable lifelines (pure random stealing)")
	noWait := flag.Bool("nowait", false, "use the unbounded-wave detection variant")
	perNode := flag.Int("pernode", 1, "images sharing a node NIC (paper ran 8/node)")
	tracePath := flag.String("trace", "", "write a Chrome trace JSON of a -single run to this file")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if *single {
		runSingle(*images, *depth, *seed, *noLifelines, *noWait, *perNode, *tracePath)
		return
	}

	var o bench.UTSOpts
	switch *figNum {
	case 16:
		o = bench.DefaultFig16()
	case 17:
		o = bench.DefaultFig17()
	case 18:
		o = bench.DefaultFig18()
	default:
		log.Fatalf("unknown figure %d (want 16, 17 or 18)", *figNum)
	}
	o.Seed = *seed
	if *depth > 0 {
		o.MaxDepth = *depth
	}
	if *cores != "" {
		v, err := bench.ParseIntList(*cores)
		if err != nil {
			log.Fatalf("-cores: %v", err)
		}
		o.Cores = v
	}
	var fig bench.Figure
	var err error
	switch *figNum {
	case 16:
		fig, err = bench.Fig16(o)
	case 17:
		fig, err = bench.Fig17(o)
	case 18:
		fig, err = bench.Fig18(o)
	}
	if err != nil {
		log.Fatal(err)
	}
	fig.Render(os.Stdout)
}

func runSingle(images, depth int, seed int64, noLifelines, noWait bool, perNode int, tracePath string) {
	if depth == 0 {
		depth = 9
	}
	spec := uts.Scaled(depth)
	seq := uts.CountSequential(spec)
	cfg := uts.DefaultConfig(spec)
	cfg.Lifelines = !noLifelines
	mcfg := caf.Config{Images: images, Seed: seed, FinishNoWait: noWait}
	if perNode > 1 {
		fab := caf.DefaultFabric()
		fab.ImagesPerNode = perNode
		mcfg.Fabric = fab
	}
	if tracePath != "" {
		mcfg.TraceCapacity = 1 << 22
	}
	res, tr, err := uts.RunTraced(mcfg, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if tracePath != "" && tr != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %d events -> %s\n", tr.Len(), tracePath)
	}
	if res.TotalNodes != seq.Nodes {
		log.Fatalf("MISCOUNT: parallel %d vs sequential %d", res.TotalNodes, seq.Nodes)
	}
	t1 := caf.Time(seq.Nodes) * cfg.WorkPerNode
	eff := float64(t1) / (float64(images) * float64(res.Time))
	fmt.Printf("UTS depth=%d: %d nodes on %d images in %v virtual\n", depth, res.TotalNodes, images, res.Time)
	fmt.Printf("parallel efficiency: %.1f%%  (T1=%v)\n", eff*100, t1)
	fmt.Printf("steals: %d ok / %d attempts; lifeline pushes: %d\n", res.Steals, res.StealAttempts, res.LifelinePushes)
	fmt.Printf("termination detection: %d allreduce rounds (noWait=%v)\n", res.Rounds, noWait)
	fmt.Printf("traffic: %d msgs, %d bytes, %d spawns\n", res.Report.Msgs, res.Report.Bytes, res.Report.SpawnsExecuted)
}
