// Command cafprof analyzes an operation-lifecycle profile exported by
// Machine.WriteProfile (or the examples' -profile flags): per-stage
// latency histograms over the four completion levels, the blocked-time
// "top blockers" table, a per-image utilization timeline, and the finish
// termination-detection round counts (Theorem 1's ≤ L+1 bound). The
// paths and tail views analyze the request-scoped critical-path capture
// of runs with path tracing enabled.
//
//	go run ./examples/quickstart -profile prof.json
//	go run ./cmd/cafprof prof.json
//	go run ./cmd/cafprof paths prof.json   # latency decomposition + waterfalls
//	go run ./cmd/cafprof tail prof.json    # per-band tail attribution
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"caf2go/internal/prof"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: it returns the process exit code
// instead of calling os.Exit, and every failure path lands on stderr.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cafprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 5, "releaser ops listed per blocking primitive")
	metrics := fs.Bool("metrics", false, "include raw metric families")
	asJSON := fs.Bool("json", false, "re-emit the normalized profile as JSON")
	slowest := fs.Int("slowest", 3, "requests rendered as waterfalls by the paths view")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cafprof [flags] [paths|tail] profile.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	view := ""
	rest := fs.Args()
	if len(rest) == 2 {
		view = rest[0]
		rest = rest[1:]
		if view != "paths" && view != "tail" {
			fmt.Fprintf(stderr, "cafprof: unknown view %q (want paths or tail)\n", view)
			return 2
		}
	}
	if len(rest) != 1 {
		fs.Usage()
		return 2
	}

	f, err := os.Open(rest[0])
	if err != nil {
		fmt.Fprintf(stderr, "cafprof: %v\n", err)
		return 1
	}
	defer f.Close()
	p, err := prof.Read(f)
	if err != nil {
		fmt.Fprintf(stderr, "cafprof: %v\n", err)
		return 1
	}

	switch view {
	case "paths":
		if err := prof.RenderPaths(stdout, p, *slowest); err != nil {
			fmt.Fprintf(stderr, "cafprof: %v\n", err)
			return 1
		}
	case "tail":
		if err := prof.RenderTail(stdout, p); err != nil {
			fmt.Fprintf(stderr, "cafprof: %v\n", err)
			return 1
		}
	default:
		if *asJSON {
			if err := prof.Write(stdout, p); err != nil {
				fmt.Fprintf(stderr, "cafprof: %v\n", err)
				return 1
			}
			return 0
		}
		prof.Render(stdout, p, prof.RenderOpts{TopBlockers: *top, Metrics: *metrics})
	}
	return 0
}
