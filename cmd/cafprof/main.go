// Command cafprof analyzes an operation-lifecycle profile exported by
// Machine.WriteProfile (or the examples' -profile flags): per-stage
// latency histograms over the four completion levels, the blocked-time
// "top blockers" table, a per-image utilization timeline, and the finish
// termination-detection round counts (Theorem 1's ≤ L+1 bound).
//
//	go run ./examples/quickstart -profile prof.json
//	go run ./cmd/cafprof prof.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"caf2go/internal/prof"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cafprof: ")
	top := flag.Int("top", 5, "releaser ops listed per blocking primitive")
	metrics := flag.Bool("metrics", false, "include raw metric families")
	asJSON := flag.Bool("json", false, "re-emit the normalized profile as JSON")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cafprof [flags] profile.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	p, err := prof.Read(f)
	if err != nil {
		log.Fatal(err)
	}

	if *asJSON {
		if err := prof.Write(os.Stdout, p); err != nil {
			log.Fatal(err)
		}
		return
	}
	prof.Render(os.Stdout, p, prof.RenderOpts{TopBlockers: *top, Metrics: *metrics})
}
