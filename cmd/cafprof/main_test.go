package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorruptInputs pins the CLI contract on bad profiles: a nonzero
// exit code and a diagnostic on stderr, never a panic or a silently
// empty report.
func TestCorruptInputs(t *testing.T) {
	cases := []struct {
		name    string
		content string
	}{
		{"empty file", ""},
		{"json null", "null"},
		{"empty object", "{}"},
		{"truncated object", `{"Images": 4, "Duration": 123`},
		{"wrong type", `{"Images": "four"}`},
		{"negative images", `{"Images": -1}`},
		{"array not object", `[1, 2, 3]`},
		{"binary garbage", "\x00\x01\x02\xff\xfe"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := filepath.Join(t.TempDir(), "prof.json")
			if err := os.WriteFile(f, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			for _, args := range [][]string{{f}, {"paths", f}, {"tail", f}} {
				var stdout, stderr bytes.Buffer
				code := run(args, &stdout, &stderr)
				if code == 0 {
					t.Errorf("args %v: exit code 0 on corrupt input, stdout %q", args, stdout.String())
				}
				if !strings.Contains(stderr.String(), "cafprof:") {
					t.Errorf("args %v: no diagnostic on stderr, got %q", args, stderr.String())
				}
				if stdout.Len() != 0 {
					t.Errorf("args %v: unexpected report on stdout: %q", args, stdout.String())
				}
			}
		})
	}
}

// TestMissingFile pins the same contract for a nonexistent path.
func TestMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{filepath.Join(t.TempDir(), "nope.json")}, &stdout, &stderr); code == 0 {
		t.Fatal("exit code 0 for a missing file")
	}
}

// TestBadUsage pins exit code 2 for malformed invocations.
func TestBadUsage(t *testing.T) {
	for _, args := range [][]string{{}, {"a.json", "b.json"}, {"frobnicate", "a.json"}} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
}

// TestValidProfile sanity-checks the happy path end to end: a profile
// with path data renders all three views with exit code 0.
func TestValidProfile(t *testing.T) {
	const doc = `{
		"Images": 2,
		"Duration": 1000,
		"Paths": {
			"Buckets": ["client_queue", "coalesce_hold", "wire", "credit_stall",
				"lock_wait", "handler_service", "repl_mirror", "epoch_stall", "replay_reissue"],
			"Reqs": [{
				"Seq": 0, "Client": 1, "Scheduled": 100, "Done": 400, "Aborted": false,
				"Buckets": [10, 0, 90, 0, 150, 50, 0, 0, 0], "Replays": 0,
				"Spans": [{"ID": 1, "Req": 0, "Parent": 0, "Kind": "lock", "Img": 1, "Peer": 0,
					"T": [110, 260, 260, 260]}]
			}]
		}
	}`
	f := filepath.Join(t.TempDir(), "prof.json")
	if err := os.WriteFile(f, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{{f}, {"paths", f}, {"tail", f}} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("args %v: exit %d, stderr %q", args, code, stderr.String())
		}
		if args[0] == "tail" && !strings.Contains(stdout.String(), "lock_wait") {
			t.Errorf("tail view does not name the dominant bucket: %q", stdout.String())
		}
	}
}
