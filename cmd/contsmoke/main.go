// Command contsmoke is the continuation-API smoke check wired into CI:
// it runs each continuation-driven workload next to its blocking
// equivalent, verifies the numeric results are identical, and asserts
// the continuation variant spends a strictly smaller share of its main
// strands' virtual time parked. Any regression exits non-zero.
//
// With -profile, the continuation stencil's traced profile is written as
// cafprof-readable JSON so CI can render where the remaining blocked
// time goes.
//
// Usage:
//
//	contsmoke [-profile out.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	caf "caf2go"
	"caf2go/examples/workloads"
	"caf2go/internal/prof"
	"caf2go/internal/sim"
)

// blockedShare computes Σ per-image main-strand parked time over the
// run's aggregate virtual time, from a traced machine.
func blockedShare(m *caf.Machine) (float64, error) {
	p := m.Profile()
	if len(p.Dropped) > 0 {
		return 0, fmt.Errorf("trace capture truncated (%v): raise TraceCapacity", p.Dropped)
	}
	if p.Duration == 0 {
		return 0, fmt.Errorf("empty profile")
	}
	var blocked sim.Time
	for _, u := range prof.Utilization(p) {
		blocked += u.MainBlocked
	}
	return float64(blocked) / float64(sim.Time(p.Images)*p.Duration), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("contsmoke: ")
	profilePath := flag.String("profile", "", "write the continuation stencil's profile JSON here")
	flag.Parse()

	trace := func(cfg caf.Config) caf.Config {
		cfg.TraceCapacity = 1 << 16
		return cfg
	}
	type variant struct {
		name string
		run  func(m **caf.Machine) (workloads.Result, error)
	}
	pairs := []struct {
		name                string
		blocking, continued variant
	}{
		{
			name: "stencil",
			blocking: variant{"event-wait stencil", func(m **caf.Machine) (workloads.Result, error) {
				return workloads.Stencil(trace(caf.Config{Images: 8, Seed: 7}), 32, 5, false, workloads.CaptureMachine(m))
			}},
			continued: variant{"continuation stencil", func(m **caf.Machine) (workloads.Result, error) {
				return workloads.StencilContinuation(trace(caf.Config{Images: 8, Seed: 7}), 32, 5, workloads.CaptureMachine(m))
			}},
		},
		{
			name: "pipeline",
			blocking: variant{"stop-and-forward pipeline", func(m **caf.Machine) (workloads.Result, error) {
				return workloads.PipelineHopBlocking(trace(caf.Config{Images: 6, Seed: 5}), 32, workloads.CaptureMachine(m))
			}},
			continued: variant{"continuation pipeline", func(m **caf.Machine) (workloads.Result, error) {
				return workloads.PipelineContinuation(trace(caf.Config{Images: 6, Seed: 5}), 32, workloads.CaptureMachine(m))
			}},
		},
	}

	failed := false
	for _, p := range pairs {
		var mb, mc *caf.Machine
		rb, err := p.blocking.run(&mb)
		if err != nil {
			log.Fatalf("%s: %v", p.blocking.name, err)
		}
		rc, err := p.continued.run(&mc)
		if err != nil {
			log.Fatalf("%s: %v", p.continued.name, err)
		}
		if rb.Check != rc.Check {
			log.Printf("FAIL %s: results diverged: blocking %q, continuation %q", p.name, rb.Check, rc.Check)
			failed = true
			continue
		}
		sb, err := blockedShare(mb)
		if err != nil {
			log.Fatalf("%s: %v", p.blocking.name, err)
		}
		sc, err := blockedShare(mc)
		if err != nil {
			log.Fatalf("%s: %v", p.continued.name, err)
		}
		verdict := "ok"
		if sc >= sb {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%-4s %s: blocked share %.3f (%s) vs %.3f (%s), makespan %d vs %d, check %s\n",
			verdict, p.name, sb, p.blocking.name, sc, p.continued.name,
			rb.Report.VirtualTime, rc.Report.VirtualTime, rc.Check)

		if p.name == "stencil" && *profilePath != "" {
			f, err := os.Create(*profilePath)
			if err != nil {
				log.Fatal(err)
			}
			if err := mc.WriteProfile(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("     wrote continuation stencil profile to %s\n", *profilePath)
		}
	}
	if failed {
		log.Fatal("continuation variants regressed against their blocking baselines")
	}
}
