// Command benchjson runs a benchmark-regression sweep and writes the
// result as JSON. The default mode is the message-coalescing sweep —
// RandomAccess function shipping and the Fig. 12 cofence loop, coalesced
// vs. uncoalesced (the committed BENCH_coalesce.json artifact). The
// -shards mode runs the shard-count sweep instead — the same workloads
// across engine shard counts, pinning bit-identity and reporting host
// wall-clock (the committed BENCH_shards.json artifact). The -load mode
// runs the service-traffic SLO sweep — the sharded KV service under
// open-loop Poisson load across offered load × machine size × protocol
// (locks vs. function shipping) × coalescing, reporting p50/p99/p999
// latency and goodput per row with a sharded bit-identity re-check (the
// committed BENCH_load.json artifact). The -recovery mode runs the
// crash-recovery sweep — the KV service with a mid-traffic primary
// crash across detector heartbeat × machine size × replication on/off,
// reporting lost vs. replayed requests and the crash-to-commit latency
// (the committed BENCH_recovery.json artifact). The -path mode runs
// the critical-path tracing sweep — each KV scenario with tracing off
// vs. on, reporting the wall-clock overhead of the observability layer
// with the SLO digest pinned identical and the latency decomposition
// asserted exact in every row (the committed BENCH_path.json artifact).
//
//	go run ./cmd/benchjson -out BENCH_coalesce.json
//	go run ./cmd/benchjson -shards -out BENCH_shards.json
//	go run ./cmd/benchjson -load -out BENCH_load.json
//	go run ./cmd/benchjson -recovery -out BENCH_recovery.json
//	go run ./cmd/benchjson -path -out BENCH_path.json
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"caf2go/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output file (default: stdout)")
	quick := flag.Bool("quick", false, "seconds-scale smoke sweep")
	metrics := flag.Bool("metrics", false, "embed each row's per-image metrics snapshot (coalesce mode)")
	shards := flag.Bool("shards", false, "run the shard-count sweep instead of the coalescing sweep")
	loadSweep := flag.Bool("load", false, "run the service-traffic SLO sweep instead of the coalescing sweep")
	recovery := flag.Bool("recovery", false, "run the crash-recovery sweep instead of the coalescing sweep")
	pathSweep := flag.Bool("path", false, "run the critical-path tracing overhead sweep instead of the coalescing sweep")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	wall := time.Now()
	if *pathSweep {
		o := bench.DefaultPath()
		if *quick {
			o = bench.SmokePath()
		}
		rep, err := bench.Path(o)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("path sweep done in %v wall time", time.Since(wall).Round(time.Millisecond))
		for wl, dom := range rep.TailDominantByWorkload {
			log.Printf("%s: slowest tail band dominated by %s", wl, dom)
		}
		log.Printf("worst tracing overhead %.1f%% wall clock, digests identical in every row", rep.MaxOverheadPct)
		if err := rep.WriteJSON(w); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *recovery {
		o := bench.DefaultRecovery()
		if *quick {
			o = bench.SmokeRecovery()
		}
		rep, err := bench.Recovery(o)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("recovery sweep done in %v wall time", time.Since(wall).Round(time.Millisecond))
		for cell, lost := range rep.LostWithoutReplication {
			log.Printf("%s: %d lost without replication, %d with", cell, lost, rep.LostWithReplication[cell])
		}
		for hb, us := range rep.RecoveryUsByHeartbeat {
			log.Printf("%s: crash-to-commit %.1fµs", hb, us)
		}
		if err := rep.WriteJSON(w); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *loadSweep {
		o := bench.DefaultLoad()
		if *quick {
			o = bench.SmokeLoad()
		}
		rep, err := bench.Load(o)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("load sweep done in %v wall time", time.Since(wall).Round(time.Millisecond))
		for cell, ratio := range rep.P99LocksOverShipping {
			log.Printf("%s: locks p99 = %.2fx function-shipping p99", cell, ratio)
		}
		for wl, infl := range rep.TailInflation {
			log.Printf("%s: p999/p50 = %.2fx at peak load", wl, infl)
		}
		if rep.CoalesceMsgReduction > 0 {
			log.Printf("kv-shipping: %.2fx fewer wire packets with coalescing at peak load", rep.CoalesceMsgReduction)
		}
		if err := rep.WriteJSON(w); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *shards {
		o := bench.DefaultShards()
		if *quick {
			o = bench.SmokeShards()
		}
		rep, err := bench.Shards(o)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("shard sweep done in %v wall time", time.Since(wall).Round(time.Millisecond))
		for wl, s := range rep.BestSpeedup {
			log.Printf("%s: best wall-clock speedup %.2fx over 1 shard", wl, s)
		}
		if err := rep.WriteJSON(w); err != nil {
			log.Fatal(err)
		}
		return
	}

	o := bench.DefaultCoalesce()
	if *quick {
		o = bench.SmokeCoalesce()
	}
	o.Metrics = *metrics

	rep, err := bench.Coalesce(o)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("sweep done in %v wall time", time.Since(wall).Round(time.Millisecond))
	for wl, red := range rep.MsgReduction {
		log.Printf("%s: %.2fx fewer wire packets, %.2fx faster", wl, red, rep.Speedup[wl])
	}

	if err := rep.WriteJSON(w); err != nil {
		log.Fatal(err)
	}
}
