// Command benchjson runs the message-coalescing benchmark-regression
// sweep — RandomAccess function shipping and the Fig. 12 cofence loop,
// coalesced vs. uncoalesced — and writes the result as JSON (the
// committed BENCH_coalesce.json artifact).
//
//	go run ./cmd/benchjson -out BENCH_coalesce.json
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"caf2go/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output file (default: stdout)")
	quick := flag.Bool("quick", false, "seconds-scale smoke sweep")
	metrics := flag.Bool("metrics", false, "embed each row's per-image metrics snapshot")
	flag.Parse()

	o := bench.DefaultCoalesce()
	if *quick {
		o = bench.SmokeCoalesce()
	}
	o.Metrics = *metrics

	wall := time.Now()
	rep, err := bench.Coalesce(o)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("sweep done in %v wall time", time.Since(wall).Round(time.Millisecond))
	for w, red := range rep.MsgReduction {
		log.Printf("%s: %.2fx fewer wire packets, %.2fx faster", w, red, rep.Speedup[w])
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		log.Fatal(err)
	}
}
