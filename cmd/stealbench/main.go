// Command stealbench regenerates the paper's Figs. 2/3 motivation: the
// cost of one work-steal attempt with one-sided get/put/lock (five round
// trips) versus shipped functions (two spawns).
package main

import (
	"flag"
	"log"
	"os"

	"caf2go/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stealbench: ")
	o := bench.DefaultSteal()
	flag.IntVar(&o.Steals, "steals", o.Steals, "steal attempts to average over")
	items := flag.String("items", "1,4,8", "items per steal (comma-separated)")
	flag.Int64Var(&o.Seed, "seed", o.Seed, "simulation seed")
	flag.Parse()
	var err error
	o.ItemsSwept, err = bench.ParseIntList(*items)
	if err != nil {
		log.Fatalf("-items: %v", err)
	}
	fig, err := bench.StealRoundTrips(o)
	if err != nil {
		log.Fatal(err)
	}
	fig.Render(os.Stdout)
}
