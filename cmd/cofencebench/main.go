// Command cofencebench regenerates the paper's Fig. 12: the
// producer/consumer micro-benchmark comparing cofence (local data
// completion), events (local operation completion), and finish (global
// completion) as synchronization strategies for asynchronous copies.
//
// Usage:
//
//	cofencebench [-cores 128,256,512,1024] [-iters 500] [-fan 5] [-bytes 80]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"caf2go/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cofencebench: ")
	o := bench.DefaultFig12()
	cores := flag.String("cores", "128,256,512,1024", "comma-separated image counts")
	flag.IntVar(&o.Iters, "iters", o.Iters, "producer iterations (paper: 1e6)")
	flag.IntVar(&o.Fan, "fan", o.Fan, "copies per iteration (paper: 5)")
	flag.IntVar(&o.Bytes, "bytes", o.Bytes, "bytes per copy (paper: 80)")
	flag.Int64Var(&o.Seed, "seed", o.Seed, "simulation seed")
	flag.Parse()

	var err error
	o.Cores, err = bench.ParseIntList(*cores)
	if err != nil {
		log.Fatalf("-cores: %v", err)
	}
	fig, err := bench.Fig12(o)
	if err != nil {
		log.Fatal(err)
	}
	fig.Render(os.Stdout)
	fmt.Println()
}
