// Command figures regenerates every figure of the paper in one pass at
// simulation scale and writes them to stdout (or -out files, one per
// figure, gnuplot-ready). See the per-figure commands (cofencebench,
// randomaccess, uts, stealbench) for full parameter control.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"caf2go/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	outDir := flag.String("out", "", "directory for per-figure .tsv files (default: stdout)")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast smoke pass")
	flag.Parse()

	type gen struct {
		name string
		run  func() (bench.Figure, error)
	}
	f12 := bench.DefaultFig12()
	f13 := bench.DefaultFig13()
	f14 := bench.DefaultFig14()
	f16 := bench.DefaultFig16()
	f17 := bench.DefaultFig17()
	f18 := bench.DefaultFig18()
	steal := bench.DefaultSteal()
	if *quick {
		f12.Cores = []int{16, 64}
		f12.Iters = 100
		f13.Cores = []int{4, 8, 16}
		f14.Cores = []int{16}
		f14.BunchSizes = []int{16, 64, 256, 1024}
		f16.Cores = []int{16, 64}
		f16.MaxDepth = 8
		f17.Cores = []int{4, 16, 64}
		f17.MaxDepth = 8
		f18.Cores = []int{16, 64}
		f18.MaxDepth = 7
		steal.Steals = 20
	}
	gens := []gen{
		{"fig2-3", func() (bench.Figure, error) { return bench.StealRoundTrips(steal) }},
		{"fig12", func() (bench.Figure, error) { return bench.Fig12(f12) }},
		{"fig13", func() (bench.Figure, error) { return bench.Fig13(f13) }},
		{"fig14", func() (bench.Figure, error) { return bench.Fig14(f14) }},
		{"fig16", func() (bench.Figure, error) { return bench.Fig16(f16) }},
		{"fig17", func() (bench.Figure, error) { return bench.Fig17(f17) }},
		{"fig18", func() (bench.Figure, error) { return bench.Fig18(f18) }},
	}

	for _, g := range gens {
		start := time.Now()
		fig, err := g.run()
		if err != nil {
			log.Fatalf("%s: %v", g.name, err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		if *outDir == "" {
			fig.Render(os.Stdout)
			fmt.Printf("# (%s generated in %v wall time)\n\n", g.name, elapsed)
			continue
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*outDir, g.name+".tsv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		fig.Render(f)
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("%s -> %s (%v)", g.name, path, elapsed)
	}
}
