// Command randomaccess regenerates the paper's RandomAccess figures:
//
//	randomaccess -fig 13   # GUP vs function shipping across cores (Fig. 13)
//	randomaccess -fig 14   # execution time vs bunch size (Fig. 14)
//	randomaccess -single -version fs -images 64 -bunch 512   # one run
//
// All sizes default to simulation scale; pass -tablebits/-cores to grow
// toward the paper's 2^22-word tables and 8192 cores.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	caf "caf2go"
	"caf2go/internal/bench"
	"caf2go/internal/ra"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("randomaccess: ")
	figNum := flag.Int("fig", 13, "figure to regenerate: 13 or 14")
	single := flag.Bool("single", false, "run one configuration and print its result")
	version := flag.String("version", "fs", "single-run version: fs or gup")
	images := flag.Int("images", 16, "single-run image count")
	bunch := flag.Int("bunch", 512, "single-run bunch size (fs)")
	conflicts := flag.Bool("conflicts", false, "single-run: count in-flight access conflicts (overlap tier)")
	hbrace := flag.Bool("race", false, "single-run: happens-before race detection (vector-clock tier)")
	tableBits := flag.Int("tablebits", 0, "local table = 2^bits words (0 = figure default)")
	cores := flag.String("cores", "", "override core sweep (comma-separated)")
	bunches := flag.String("bunches", "", "override bunch sweep for -fig 14")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if *single {
		runSingle(*version, *images, *bunch, *tableBits, *seed, *conflicts, *hbrace)
		return
	}

	switch *figNum {
	case 13:
		o := bench.DefaultFig13()
		o.Seed = *seed
		if *tableBits > 0 {
			o.LocalTableBits = *tableBits
		}
		override(&o.Cores, *cores)
		fig, err := bench.Fig13(o)
		if err != nil {
			log.Fatal(err)
		}
		fig.Render(os.Stdout)
	case 14:
		o := bench.DefaultFig14()
		o.Seed = *seed
		if *tableBits > 0 {
			o.LocalTableBits = *tableBits
		}
		override(&o.Cores, *cores)
		override(&o.BunchSizes, *bunches)
		fig, err := bench.Fig14(o)
		if err != nil {
			log.Fatal(err)
		}
		fig.Render(os.Stdout)
	default:
		log.Fatalf("unknown figure %d (want 13 or 14)", *figNum)
	}
}

func override(dst *[]int, s string) {
	if s == "" {
		return
	}
	v, err := bench.ParseIntList(s)
	if err != nil {
		log.Fatalf("bad list %q: %v", s, err)
	}
	*dst = v
}

func runSingle(version string, images, bunch, tableBits int, seed int64, conflicts, hbrace bool) {
	var cfg ra.Config
	switch version {
	case "fs":
		cfg = ra.DefaultConfig(ra.FunctionShipping)
		cfg.BunchSize = bunch
	case "gup":
		cfg = ra.DefaultConfig(ra.GetUpdatePut)
	default:
		log.Fatalf("unknown version %q (want fs or gup)", version)
	}
	if tableBits > 0 {
		cfg.LocalTableBits = tableBits
	}
	res, err := ra.Run(caf.Config{Images: images, Seed: seed, DetectConflicts: conflicts, RaceDetector: hbrace}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %d images: %d updates in %v virtual (%.6f GUPS), %d errors, %d finishes\n",
		cfg.Version, images, res.Updates, res.Time, res.GUPS, res.Errors, res.Finishes)
	fmt.Printf("traffic: %d msgs, %d bytes; finish rounds total: %d\n",
		res.Report.Msgs, res.Report.Bytes, res.Report.ReduceRounds)
	if conflicts || hbrace {
		fmt.Printf("detected conflicts (both tiers): %d\n", res.Conflicts)
		for _, line := range res.ConflictLog {
			fmt.Println("  " + line)
		}
	}
}
