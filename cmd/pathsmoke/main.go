// Command pathsmoke is the critical-path tracing smoke check wired into
// CI: it runs the lock-protocol KV service with path tracing enabled
// and asserts the tentpole contracts — the bucket decomposition of
// every completed request sums exactly to its Collector-measured
// latency, exactly the completed requests carry a closed path, tracing
// does not perturb the SLO digest, and the dominant bucket of the
// slowest tail band is the lock wait. Any regression exits non-zero.
//
// With -profile, the traced run's profile is written as
// cafprof-readable JSON so CI can render the paths and tail views.
//
// Usage:
//
//	pathsmoke [-profile out.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	caf "caf2go"
	"caf2go/examples/workloads"
	"caf2go/internal/load"
	"caf2go/internal/prof"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pathsmoke: ")
	profilePath := flag.String("profile", "", "write the traced run's profile JSON here")
	flag.Parse()

	run := func(traced bool) (*caf.Machine, load.SLO) {
		var slo load.SLO
		var m *caf.Machine
		_, err := workloads.KVService(
			caf.Config{Images: 8, Seed: 11, PathTracing: traced},
			workloads.ServiceOpts{Requests: 240, Rate: 240_000, WriteFrac: 0.5, SLOOut: &slo},
			workloads.CaptureMachine(&m))
		if err != nil {
			log.Fatalf("kv-locks traced=%v: %v", traced, err)
		}
		return m, slo
	}
	_, sloOff := run(false)
	m, sloOn := run(true)
	if sloOn.Digest() != sloOff.Digest() {
		log.Fatalf("tracing perturbed the run:\n  off %s\n   on %s", sloOff.Digest(), sloOn.Digest())
	}

	p := m.Profile()
	if p.Paths == nil {
		log.Fatal("path tracing enabled but profile has no path capture")
	}
	if mm := prof.PathMismatches(p); len(mm) > 0 {
		log.Fatalf("%d requests violate the exactness invariant (first: seq %d buckets sum %d ≠ latency %d)",
			len(mm), mm[0].Seq, mm[0].Sum, mm[0].Latency)
	}
	completed := prof.CompletedPaths(p)
	if int64(len(completed)) != sloOn.Completed {
		log.Fatalf("path capture closed %d requests, collector completed %d", len(completed), sloOn.Completed)
	}
	if got := int64(m.PathTracker().Finished()); got != sloOn.Completed {
		log.Fatalf("tracker finished %d, collector completed %d", got, sloOn.Completed)
	}
	bands := prof.Tail(p)
	if len(bands) == 0 {
		log.Fatal("tail produced no bands")
	}
	tail := bands[len(bands)-1]
	if tail.Dominant != "lock_wait" {
		log.Fatalf("tail band %s dominant bucket = %q, want lock_wait — lock-wait attribution regressed",
			tail.Band, tail.Dominant)
	}

	fmt.Printf("ok   kv-locks: %d/%d requests decomposed exactly, digest inert, tail %s dominated by %s\n",
		len(completed), sloOn.Requests, tail.Band, tail.Dominant)
	fmt.Printf("     digest: %s\n", sloOn.Digest())

	if *profilePath != "" {
		f, err := os.Create(*profilePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("     wrote traced kv-locks profile to %s\n", *profilePath)
	}
}
