package caf_test

import (
	"testing"

	caf "caf2go"
)

func replCfg(n int, seed int64, crash map[int]caf.Time) caf.Config {
	cfg := caf.Config{
		Images:      n,
		Seed:        seed,
		Replication: caf.ReplicationConfig{Enabled: true},
		FailureDetector: caf.FailureDetectorConfig{
			Enabled:   true,
			Heartbeat: 2 * caf.Microsecond,
		},
	}
	if len(crash) > 0 {
		cfg.Faults = &caf.FaultPlan{Seed: seed, Crash: crash}
	}
	return cfg
}

// TestReplCoarrayMirrorAndLedger: on a healthy machine every Apply
// mirrors to the next rank, and re-applying an already-applied seq
// returns the recorded value instead of double-applying.
func TestReplCoarrayMirrorAndLedger(t *testing.T) {
	_, err := caf.Run(replCfg(4, 7, nil), func(img *caf.Image) {
		rc := caf.NewReplCoarray[int64](img, nil, 8, nil)
		me := img.Rank()
		if v := rc.Apply(img, me, 100+me, 3, func(cur int64) int64 { return cur + 10 }); v != 10 {
			t.Errorf("rank %d: first apply = %d, want 10", me, v)
		}
		// Exactly-once: same (home, seq) must not re-apply.
		if v := rc.Apply(img, me, 100+me, 3, func(cur int64) int64 { return cur + 10 }); v != 10 {
			t.Errorf("rank %d: replayed apply = %d, want 10", me, v)
		}
		if v := rc.Apply(img, me, 200+me, 3, func(cur int64) int64 { return cur + 5 }); v != 15 {
			t.Errorf("rank %d: second apply = %d, want 15", me, v)
		}
		// Let the mirrors land, then check the copy of the previous
		// home held here matches the primary.
		img.Compute(50 * caf.Microsecond)
		img.Barrier(nil)
		prev := (me + 3) % 4
		if rc.Backup(prev) != me {
			t.Fatalf("rank %d: Backup(%d) = %d", me, prev, rc.Backup(prev))
		}
		if got := rc.Read(img, prev, 3); got != 15 {
			t.Errorf("rank %d: mirror of home %d = %d, want 15", me, prev, got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReplCoarrayFailover: the backup of a crashed primary is promoted
// at the epoch commit; replayed requests are answered exactly once from
// the mirrored ledger and new requests land on the promoted copy.
func TestReplCoarrayFailover(t *testing.T) {
	m := caf.NewMachine(replCfg(4, 9, map[int]caf.Time{1: 30 * caf.Microsecond}))
	m.Launch(func(img *caf.Image) {
		rc := caf.NewReplCoarray[int64](img, nil, 4, nil)
		switch img.Rank() {
		case 1:
			// Primary of home 1 applies once before dying; the mirror
			// reaches rank 2 well before the 30µs crash.
			if v := rc.Apply(img, 1, 1, 0, func(cur int64) int64 { return cur + 7 }); v != 7 {
				t.Errorf("pre-crash apply = %d, want 7", v)
			}
		case 2:
			img.Compute(100 * caf.Microsecond) // past detection + agreement
			if got := rc.Serving(1); got != 2 {
				t.Errorf("post-commit Serving(1) = %d, want promoted backup 2", got)
			}
			// Replay of the pre-crash request: ledger hit, not a
			// double-apply.
			if v := rc.Apply(img, 1, 1, 0, func(cur int64) int64 { return cur + 7 }); v != 7 {
				t.Errorf("replayed apply = %d, want recorded 7", v)
			}
			// Fresh request continues from the mirrored state.
			if v := rc.Apply(img, 1, 2, 0, func(cur int64) int64 { return cur + 5 }); v != 12 {
				t.Errorf("post-failover apply = %d, want 12", v)
			}
			if got := rc.Read(img, 1, 0); got != 12 {
				t.Errorf("promoted copy = %d, want 12", got)
			}
		}
	})
	if _, err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 1 || !m.DeathCommitted(1) || m.DeathCommitted(2) {
		t.Errorf("epoch=%d committed(1)=%v committed(2)=%v", m.Epoch(), m.DeathCommitted(1), m.DeathCommitted(2))
	}
	if got := m.ReplicaOf(1); got != 2 {
		t.Errorf("ReplicaOf(1) = %d, want 2", got)
	}
	if st := m.ReplStats(); st.Promotions != 1 || st.Epoch != 1 {
		t.Errorf("ReplStats = %+v", st)
	}
}

// TestReplicationOffIsInert: with the zero Replication config the
// machine-level surface answers zeros and a ReplCoarray routes
// statically — nothing about the run depends on the repl subsystem.
func TestReplicationOffIsInert(t *testing.T) {
	m := caf.NewMachine(caf.Config{Images: 2, Seed: 3})
	m.Launch(func(img *caf.Image) {
		rc := caf.NewReplCoarray[int64](img, nil, 2, nil)
		if rc.Serving(0) != 0 || rc.Serving(1) != 1 {
			t.Errorf("static routing broken: %d %d", rc.Serving(0), rc.Serving(1))
		}
	})
	if _, err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 0 || m.DeathCommitted(0) || m.ReplicaOf(0) != -1 || (m.ReplStats() != caf.ReplStats{}) {
		t.Error("replication-off machine surface is not inert")
	}
}
