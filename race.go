package caf

import (
	"fmt"

	"caf2go/internal/core"
	"caf2go/internal/race"
	"caf2go/internal/trace"
)

// Happens-before race detection: when Config.RaceDetector is set, every
// execution context (each image's SPMD main and every shipped function)
// and every asynchronous operation carries a vector-clock component
// (internal/race), and the synchronization constructs install
// release/acquire edges:
//
//   - EventNotify releases the notifier's clock (plus the clocks of the
//     remote updates the notify waits on) into the event; EventWait /
//     EventTryWait and predicate consumption acquire it. An event's clock
//     accumulates over notifies — the counting-semaphore approximation:
//     a waiter acquires all prior notifies, not just the one it consumed,
//     which can only hide races, never invent them.
//   - Lock transfers the releaser's clock to the next holder.
//   - Finish joins every member's end-of-body clock and the clocks of all
//     implicitly-completed operations initiated inside the block; each
//     member acquires the join when detection signals termination.
//   - Cofence acquires the local-data-completion clocks of the implicit
//     operations the fence's DOWNWARD filter does not let pass.
//   - Spawn forks the child's clock from the spawner's at initiation; an
//     implicit spawn releases its final clock into the enclosing finish,
//     an explicit one into its completion event.
//   - Collectives release participants' clocks into a per-instance sync
//     object and acquire it role-filtered (a broadcast orders receivers
//     after the root, a reduction orders the root after contributors).
//   - When the fabric guarantees per-(src,dst) FIFO delivery
//     (FabricConfig.FIFO, the default), each channel carries a clock so
//     successive deliveries on the same channel are ordered — e.g. two
//     back-to-back CopyAsyncs from one image into the same remote range
//     are not a race, matching what the ordered conduit guarantees.
//
// Every edge the runtime installs corresponds to an ordering the memory
// model actually promises. The conservative direction is the other one:
// an operation that merely completed early (without a synchronizing
// construct observing it) must NOT be acquired, or the detector would
// miss exactly the races the overlap tier already misses.
//
// Only runtime-mediated accesses are visible, as in the overlap tier;
// direct Coarray.Local slice access is the image's own memory (the DRF0
// side of the memory model) and is not tracked.

// raceState is the machine-wide detector state.
type raceState struct {
	d    *race.Detector
	fifo bool

	// chans holds one clock per (src, dst) fabric channel.
	chans map[[2]int]race.Clock

	// finish holds per-finish-block sync objects, keyed by the globally
	// consistent finish id.
	finish map[int64]*finishSync

	// colls holds per-collective-instance sync objects; collSeq counts
	// instances per (image, team) so SPMD program order matches them
	// (the carrSeq idiom).
	colls   map[collKey]*collSync
	collSeq map[collSeqKey]uint64
}

// finishSync accumulates the clocks a finish block's exit acquires.
type finishSync struct {
	// ops joins the clocks of implicitly-completed asynchronous
	// operations initiated inside the block (joined eagerly at
	// initiation: the exit cannot happen before they complete).
	ops race.Clock
	// members joins each member's clock at its end-of-body release.
	members race.Clock
	// refs point at collective sync clocks still accumulating at
	// registration time; dereferenced at exit.
	refs []*race.Clock
}

type collKey struct {
	team int64
	seq  uint64
}

type collSeqKey struct {
	rank int
	team int64
}

// collSync is one collective instance's accumulated release clock.
type collSync struct {
	clk race.Clock
}

func newRaceState(fifo bool) *raceState {
	return &raceState{
		d:       race.NewDetector(),
		fifo:    fifo,
		chans:   make(map[[2]int]race.Clock),
		finish:  make(map[int64]*finishSync),
		colls:   make(map[collKey]*collSync),
		collSeq: make(map[collSeqKey]uint64),
	}
}

func (rs *raceState) finishSyncFor(id int64) *finishSync {
	fs := rs.finish[id]
	if fs == nil {
		fs = &finishSync{}
		rs.finish[id] = fs
	}
	return fs
}

// collInstance returns the sync object of the image's next collective
// instance on team t, matching instances across images by per-team
// program order.
func (rs *raceState) collInstance(rank int, t *Team) *collSync {
	sk := collSeqKey{rank: rank, team: t.ID()}
	rs.collSeq[sk]++
	key := collKey{team: t.ID(), seq: rs.collSeq[sk]}
	cs := rs.colls[key]
	if cs == nil {
		cs = &collSync{}
		rs.colls[key] = cs
	}
	return cs
}

// raceOp tracks one implicitly-completed operation for cofence edges.
// clkRef points at the clock covering the op's local data completion
// (set when the op actually initiates, which relaxed mode may defer).
type raceOp struct {
	op     *core.PendingOp
	class  core.OpClass
	clkRef *race.Clock
}

// ---------------------------------------------------------------------
// Nil-safe helpers: every call site may run with the detector off.
// ---------------------------------------------------------------------

// raceCtx returns the image's context, or nil when detection is off.
func (img *Image) raceCtx() *race.Ctx { return img.rc }

// raceRelease snapshots the context's clock for a release edge and
// advances its epoch (so the released clock does not cover later
// activity). Returns nil when detection is off.
func (img *Image) raceRelease() race.Clock {
	if img.rc == nil {
		return nil
	}
	clk := img.rc.Snapshot()
	img.rc.Tick()
	return clk
}

// raceAcquire joins clk into the image's context.
func (img *Image) raceAcquire(clk race.Clock) {
	if img.rc != nil && clk != nil {
		img.rc.Acquire(clk)
	}
}

// raceChanArrive models one FIFO channel hop: the delivered message's
// clock joins the (from, to) channel clock, and the channel remembers
// the join so later deliveries on the same channel are ordered after it.
// Without FIFO delivery the message clock passes through unchanged.
func (m *Machine) raceChanArrive(from, to int, clk race.Clock) race.Clock {
	rs := m.race
	if rs == nil {
		return nil
	}
	if !rs.fifo {
		return clk
	}
	key := [2]int{from, to}
	eff := race.Join(race.CopyClock(clk), rs.chans[key])
	rs.chans[key] = race.Join(rs.chans[key], eff)
	return eff
}

// raceRecord registers one section access under an explicit (ctx, clock)
// pair — used for asynchronous operations running under op clocks.
func raceRecord[T any](m *Machine, s Sec[T], write bool, ctxID int, clk race.Clock, op string) {
	rs := m.race
	if rs == nil || s.ca == nil || ctxID < 0 {
		return
	}
	rs.d.Access(s.ca, s.rank, s.lo, s.hi, s.step, write, ctxID, clk, op, m.eng.Now())
}

// raceRecordCtx registers a section access by the image's own context —
// the blocking Get/Put case, where the caller is parked until the remote
// access completes, so the access is ordered exactly at its program
// point.
func raceRecordCtx[T any](img *Image, s Sec[T], write bool, op string) {
	if img.rc == nil {
		return
	}
	raceRecord(img.m, s, write, img.rc.ID(), img.rc.Clock(), op)
}

// collBracket installs a blocking collective's edges: a role-filtered
// release before the operation, and a deferred role-filtered acquire
// (call the returned func after the collective returns, when every
// releaser has contributed). It also brackets the call for the
// observability layer: one lifecycle op (a blocking collective runs all
// four stages inside the call) and one blocked interval, both inert
// when tracing is off.
func (img *Image) collBracket(name string, t *Team, rel, acq bool) func() {
	opID := img.opNew("coll:"+name, -1)
	img.opStage(opID, trace.StageInit)
	btok := img.beginBlock("collective")
	finish := func() {
		img.opStage(opID, trace.StageLocalData)
		img.opStage(opID, trace.StageLocalOp)
		img.opStage(opID, trace.StageGlobal)
		img.endBlock(btok)
	}
	rs := img.m.race
	if rs == nil || img.rc == nil {
		return finish
	}
	cs := rs.collInstance(img.Rank(), t)
	if rel {
		img.rc.ReleaseInto(&cs.clk)
	}
	if !acq {
		return finish
	}
	return func() {
		img.rc.Acquire(cs.clk)
		finish()
	}
}

// ---------------------------------------------------------------------
// Unified conflict reporting (both tiers).
// ---------------------------------------------------------------------

// Conflict is one detected ordering violation, from either tier.
type Conflict struct {
	// Kind is "overlap" (in-flight temporal overlap, DetectConflicts) or
	// "race" (happens-before violation, RaceDetector).
	Kind string
	// Image is the world rank owning the conflicted shard.
	Image int
	// Lo, Hi bound the intersection of the two access windows.
	Lo, Hi int
	// First and Second describe the two access sites (operation names).
	First, Second string
	// Time is the virtual time of detection.
	Time Time
	// Missing describes the absent synchronization edge (races only).
	Missing string
}

// ConflictDetails returns structured descriptions of the recorded
// conflicts from both detection tiers, in chronological order.
func (m *Machine) ConflictDetails() []Conflict {
	var overlap []Conflict
	if cs := m.conflicts; cs != nil {
		for _, e := range cs.log {
			overlap = append(overlap, Conflict{
				Kind: "overlap", Image: e.image, Lo: e.lo, Hi: e.hi,
				First: e.first, Second: e.second, Time: e.t,
			})
		}
	}
	var races []Conflict
	if rs := m.race; rs != nil {
		for _, r := range rs.d.Races() {
			races = append(races, Conflict{
				Kind: "race", Image: r.Rank, Lo: r.Lo, Hi: r.Hi,
				First: r.Prior.Op, Second: r.Current.Op,
				Time: r.Detected, Missing: r.Missing(),
			})
		}
	}
	return mergeByTime(overlap, races)
}

// mergeByTime merges two chronologically ordered conflict lists.
func mergeByTime(a, b []Conflict) []Conflict {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Conflict, 0, len(a)+len(b))
	for len(a) > 0 && len(b) > 0 {
		if a[0].Time <= b[0].Time {
			out = append(out, a[0])
			a = a[1:]
		} else {
			out = append(out, b[0])
			b = b[1:]
		}
	}
	out = append(out, a...)
	return append(out, b...)
}

// raceLogLines formats the race tier's reports for ConflictLog.
func (m *Machine) raceLogLines() []logEntry {
	rs := m.race
	if rs == nil {
		return nil
	}
	out := make([]logEntry, 0, len(rs.d.Races()))
	for _, r := range rs.d.Races() {
		out = append(out, logEntry{
			t: r.Detected,
			s: fmt.Sprintf("race at image %d [%d,%d): %s unordered with %s at t=%v",
				r.Rank, r.Lo, r.Hi, r.Current.Op, r.Prior.Op, r.Detected),
		})
	}
	return out
}
